#include "policy/lifecycle_controller.h"

#include <algorithm>

namespace prorp::policy {
namespace {

/// Minimum spacing between two eviction restores of the same database.
constexpr DurationSeconds kEvictionRestoreCooldown = Minutes(20);

}  // namespace

std::string_view PolicyModeName(PolicyMode mode) {
  switch (mode) {
    case PolicyMode::kProactive:
      return "proactive";
    case PolicyMode::kReactive:
      return "reactive";
    case PolicyMode::kAlwaysOn:
      return "always_on";
  }
  return "unknown";
}

LifecycleController::LifecycleController(PolicyConfig config,
                                         PolicyMode mode,
                                         history::HistoryStore* history,
                                         const forecast::Predictor* predictor,
                                         EpochSeconds created_at,
                                         TransitionCallback on_transition)
    : config_(config),
      mode_(mode),
      history_(history),
      predictor_(predictor),
      on_transition_(std::move(on_transition)) {
  // The database is created resumed with its first workload running
  // (Algorithm 1 lines 2-3).
  NoteHistoryOutcome(history_->InsertHistory(created_at, history::kEventLogin));
}

void LifecycleController::NoteHistoryOutcome(const Status& s) {
  if (s.ok()) {
    if (degraded_) {
      degraded_ = false;
      ++stats_.degraded_exits;
    }
    return;
  }
  ++stats_.history_errors;
  if (s.IsCorruption()) ++stats_.corruption_errors;
  if (!degraded_) {
    degraded_ = true;
    ++stats_.degraded_enters;
  }
}

Result<LoginOutcome> LifecycleController::OnActivityStart(EpochSeconds now) {
  if (active_) return LoginOutcome::kAlreadyActive;
  // Line 3.  A history-store failure must not fail the login: degrade
  // instead (the prediction pipeline just misses one sample).
  NoteHistoryOutcome(history_->InsertHistory(now, history::kEventLogin));
  active_ = true;
  switch (state_) {
    case DbState::kResumed:
      // Only kAlwaysOn idles in the resumed state.
      ++stats_.logins_available;
      return LoginOutcome::kResourcesAvailable;
    case DbState::kLogicallyPaused:
      ++stats_.logins_available;
      next_timer_ = 0;
      Transition(DbState::kResumed, now, TransitionCause::kActivityStart);
      return LoginOutcome::kResourcesAvailable;
    case DbState::kPhysicallyPaused:
      ++stats_.logins_reactive;
      Transition(DbState::kResumed, now, TransitionCause::kReactiveResume);
      return LoginOutcome::kReactiveResume;
  }
  return Status::Internal("unreachable");
}

Status LifecycleController::OnActivityEnd(EpochSeconds now) {
  if (!active_) {
    return Status::FailedPrecondition("activity end without activity");
  }
  // Line 6; non-propagating, same as the login path.
  NoteHistoryOutcome(history_->InsertHistory(now, history::kEventLogout));
  active_ = false;
  if (mode_ == PolicyMode::kAlwaysOn) return Status::OK();

  // Line 7: skip history cleanup and re-prediction while the previously
  // predicted activity is not over yet.
  if (mode_ == PolicyMode::kProactive && next_activity_.end < now) {
    RefreshPrediction(now);  // lines 8-9
  }
  // Lines 10-12.
  if (mode_ == PolicyMode::kProactive &&
      ShouldPhysicallyPause(now)) {
    EnterPhysicalPause(now, TransitionCause::kActivityEndPhysical);
  } else {
    EnterLogicalPause(now, TransitionCause::kActivityEndLogical);
  }
  return Status::OK();
}

Status LifecycleController::OnTimerCheck(EpochSeconds now) {
  // Stale timers (the database resumed or was evicted meanwhile) are
  // harmless no-ops.
  if (state_ != DbState::kLogicallyPaused || active_) return Status::OK();
  if (MustStayLogicallyPaused(now)) {  // lines 19-20
    next_timer_ = ComputeNextBoundary(now);
    return Status::OK();
  }
  // Lines 24-25: the wait is over and the database is still idle.
  if (mode_ == PolicyMode::kProactive) {
    RefreshPrediction(now);
  }
  // Lines 26-29 (with <= tolerance on the logical-pause expiry, see
  // header comment).
  bool effective_old = old_ && UsablePrediction();
  bool expired = !effective_old && pause_start_ +
                     config_.logical_pause_duration <= now;
  if (expired || ShouldPhysicallyPause(now)) {
    EnterPhysicalPause(now, TransitionCause::kLogicalPauseExpired);
    return Status::OK();
  }
  // Neither waiting condition nor pause condition holds (e.g. a fresh
  // prediction starting right now): re-check at slide granularity, which
  // is the rate at which predictions can change.
  next_timer_ = ComputeNextBoundary(now);
  return Status::OK();
}

Status LifecycleController::OnProactiveResume(EpochSeconds now) {
  if (state_ != DbState::kPhysicallyPaused) {
    return Status::FailedPrecondition(
        "proactive resume requires a physically paused database");
  }
  ++stats_.proactive_resumes;
  prewarmed_ = true;
  // Algorithm 5 line 8: the database enters LogicalPause() — resources
  // allocated, awaiting the predicted login, customer not billed.
  pause_start_ = now;
  Transition(DbState::kLogicallyPaused, now,
             TransitionCause::kProactiveResume);
  next_timer_ = ComputeNextBoundary(now);
  return Status::OK();
}

Status LifecycleController::OnForcedEviction(EpochSeconds now) {
  if (state_ != DbState::kLogicallyPaused || active_) {
    return Status::FailedPrecondition(
        "forced eviction requires an idle logically paused database");
  }
  ++stats_.forced_evictions;
  // Coverage restore: when the reclaimed pause was protecting predicted
  // activity that is still ahead (whether the pause came from the policy
  // itself or from a control-plane pre-warm), re-schedule the pre-warm so
  // the coverage can be re-established, typically on a less loaded node.
  // A cooldown bounds the churn: a pause that was just restored is not
  // re-fought — the pressure wins for a while.
  bool cooled_down =
      last_restore_time_ == 0 ||
      now - last_restore_time_ >= kEvictionRestoreCooldown;
  if (mode_ == PolicyMode::kProactive &&
      config_.eviction_restore_delay > 0 && cooled_down &&
      UsablePrediction() && next_activity_.HasPrediction() &&
      next_activity_.end > now) {
    next_activity_.start =
        std::max(next_activity_.start, now + config_.eviction_restore_delay);
    next_activity_.end = std::max(next_activity_.end, next_activity_.start);
    last_restore_time_ = now;
  }
  EnterPhysicalPause(now, TransitionCause::kForcedEviction);
  return Status::OK();
}

Status LifecycleController::OnMaintenanceTouch(EpochSeconds now) {
  (void)now;  // virtual-clock signature symmetry; the touch is stateless
  if (state_ != DbState::kPhysicallyPaused) {
    return Status::FailedPrecondition(
        "maintenance touch requires a physically paused database");
  }
  ++stats_.maintenance_touches;
  return Status::OK();
}

void LifecycleController::RefreshPrediction(EpochSeconds now) {
  auto old_result =
      history_->DeleteOldHistory(config_.prediction.history_length, now);
  NoteHistoryOutcome(old_result.status());
  old_ = old_result.ok() ? *old_result : false;
  if (predictor_ == nullptr) {
    prediction_usable_ = false;
    next_activity_ = forecast::ActivityPrediction::None();
    return;
  }
  auto pred = predictor_->PredictNextActivity(*history_, now);
  if (pred.ok()) {
    next_activity_ = *pred;
    prediction_usable_ = true;
    ++stats_.predictions_made;
  } else {
    // Default to reactive: behave like a new database with no prediction
    // until the component recovers (Section 3.2).
    next_activity_ = forecast::ActivityPrediction::None();
    prediction_usable_ = false;
    ++stats_.reactive_fallbacks;
  }
}

bool LifecycleController::ShouldPhysicallyPause(EpochSeconds now) const {
  if (!UsablePrediction()) return false;  // reactive fallback: never eager
  // Line 10 / 26: no activity predicted within the next l time units, or
  // an old database with no prediction at all.
  if (next_activity_.HasPrediction() &&
      now + config_.logical_pause_duration <= next_activity_.start) {
    return true;
  }
  if (old_ && !next_activity_.HasPrediction()) return true;
  return false;
}

bool LifecycleController::MustStayLogicallyPaused(EpochSeconds now) const {
  // Line 19.  The reactive policy and the reactive fallback behave like a
  // new database: wait out the full logical pause duration.
  bool effective_old = old_ && UsablePrediction();
  if (!effective_old && now < pause_start_ + config_.logical_pause_duration) {
    return true;
  }
  if (!UsablePrediction() || !next_activity_.HasPrediction()) return false;
  if (now < next_activity_.end) return true;
  if (now < next_activity_.start &&
      next_activity_.start < now + config_.logical_pause_duration) {
    return true;
  }
  return false;
}

EpochSeconds LifecycleController::ComputeNextBoundary(
    EpochSeconds now) const {
  EpochSeconds best = 0;
  auto consider = [&](EpochSeconds t) {
    if (t > now && (best == 0 || t < best)) best = t;
  };
  bool effective_old = old_ && UsablePrediction();
  if (!effective_old) {
    consider(pause_start_ + config_.logical_pause_duration);
  }
  if (UsablePrediction() && next_activity_.HasPrediction()) {
    consider(next_activity_.start);
    consider(next_activity_.end);
  }
  if (best == 0) {
    // Inconclusive (prediction starting immediately): poll at the slide
    // granularity, the rate at which window-based predictions change.
    best = now + config_.prediction.window_slide;
  }
  return best;
}

void LifecycleController::Transition(DbState to, EpochSeconds now,
                                     TransitionCause cause) {
  TransitionEvent event;
  event.time = now;
  event.from = state_;
  event.to = to;
  event.cause = cause;
  event.prediction =
      UsablePrediction() ? next_activity_
                         : forecast::ActivityPrediction::None();
  event.used_prediction = UsablePrediction();
  state_ = to;
  if (on_transition_) on_transition_(event);
}

void LifecycleController::EnterLogicalPause(EpochSeconds now,
                                            TransitionCause cause) {
  ++stats_.logical_pauses;
  prewarmed_ = false;  // an ordinary pause, not a control-plane pre-warm
  pause_start_ = now;  // lines 15-16
  Transition(DbState::kLogicallyPaused, now, cause);
  next_timer_ = ComputeNextBoundary(now);
}

void LifecycleController::EnterPhysicalPause(EpochSeconds now,
                                             TransitionCause cause) {
  ++stats_.physical_pauses;
  next_timer_ = 0;
  // Line 31 (InsertMetadata) is observed by the control plane through the
  // transition event's prediction field; line 32 reclaims the resources.
  Transition(DbState::kPhysicallyPaused, now, cause);
}

}  // namespace prorp::policy
