#ifndef PRORP_POLICY_LIFECYCLE_CONTROLLER_H_
#define PRORP_POLICY_LIFECYCLE_CONTROLLER_H_

#include <functional>
#include <string>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "forecast/predictor.h"
#include "history/history_store.h"
#include "policy/lifecycle.h"

namespace prorp::policy {

/// Resource allocation mode.
enum class PolicyMode {
  /// Algorithm 1: predict next activity, physically pause when no activity
  /// is expected within l, resume proactively via the control plane.
  kProactive,
  /// The current production baseline (Section 2.2): always logically pause
  /// on idle, physically pause after l, resume reactively on demand.
  kReactive,
  /// Fixed provisioned: resources never reclaimed (cost upper bound).
  kAlwaysOn,
};

std::string_view PolicyModeName(PolicyMode mode);

/// Event-driven encoding of Algorithm 1's per-database lifecycle.
///
/// The paper writes the proactive policy as blocking loops (Resume /
/// LogicalPause / PhysicalPause run "inside" the database).  To simulate
/// hundreds of thousands of databases on one thread, this controller keeps
/// the same state variables (nextActivity, old, pauseStart) and evaluates
/// the same branch conditions, but is driven by events:
///
///   OnActivityStart  — customer login            (Resume(), lines 1-5)
///   OnActivityEnd    — workload completed        (lines 6-12)
///   OnTimerCheck     — logical-pause wait expiry (lines 18-29)
///   OnProactiveResume— control plane pre-warm    (Algorithm 5 line 8)
///   OnForcedEviction — node capacity pressure    (production reality;
///                      see DESIGN.md section 3, "Capacity pressure")
///
/// After any event, NextTimerAt() tells the driver when the controller
/// next needs to re-evaluate its wait conditions (0 = no timer needed).
///
/// "Default to Reactive" (Section 3.2): if PredictNextActivity returns a
/// non-OK Status, the controller behaves exactly like PolicyMode::kReactive
/// for that decision and counts the fallback.
///
/// Graceful degradation: history-store write failures do NOT propagate to
/// the customer path (a login must never fail because telemetry storage
/// is down).  Instead the controller enters a degraded mode in which it
/// ignores predictions — behaving like kReactive — until a history
/// operation succeeds again, and counts the transitions.
class LifecycleController {
 public:
  using TransitionCallback = std::function<void(const TransitionEvent&)>;

  struct Stats {
    uint64_t logins_available = 0;        // logins with resources allocated
    uint64_t logins_reactive = 0;         // logins that hit a physical pause
    uint64_t logical_pauses = 0;
    uint64_t physical_pauses = 0;
    uint64_t proactive_resumes = 0;
    uint64_t predictions_made = 0;
    uint64_t reactive_fallbacks = 0;      // prediction component failures
    uint64_t forced_evictions = 0;
    uint64_t maintenance_touches = 0;
    uint64_t history_errors = 0;          // failed history-store operations
    uint64_t corruption_errors = 0;       // history errors typed Corruption
    uint64_t degraded_enters = 0;         // transitions into degraded mode
    uint64_t degraded_exits = 0;          // recoveries back to proactive
  };

  /// `history` and `predictor` must outlive the controller.  `predictor`
  /// may be null when mode != kProactive.  The controller assumes the
  /// database starts resumed with a running workload at `created_at` and
  /// records the initial login in the history.
  LifecycleController(PolicyConfig config, PolicyMode mode,
                      history::HistoryStore* history,
                      const forecast::Predictor* predictor,
                      EpochSeconds created_at,
                      TransitionCallback on_transition = nullptr);

  LifecycleController(const LifecycleController&) = delete;
  LifecycleController& operator=(const LifecycleController&) = delete;

  /// Customer login.  Tracks the activity start (Algorithm 1 line 3) and
  /// resumes resources if paused.  Returns what the customer experienced.
  Result<LoginOutcome> OnActivityStart(EpochSeconds now);

  /// Customer workload completed (line 6 onward): records the activity
  /// end, refreshes the prediction if the previous one is over, and
  /// decides logical vs physical pause (lines 7-12).
  Status OnActivityEnd(EpochSeconds now);

  /// Re-evaluates the logical-pause wait conditions (lines 18-29).  A
  /// no-op unless the database is logically paused and idle.
  Status OnTimerCheck(EpochSeconds now);

  /// Control-plane pre-warm (Algorithm 5 calls LogicalPause()).  Only
  /// valid while physically paused; the database becomes logically paused
  /// awaiting the predicted login.
  Status OnProactiveResume(EpochSeconds now);

  /// Node capacity pressure reclaims a logically paused database early.
  Status OnForcedEviction(EpochSeconds now);

  /// Control-plane maintenance touch: a background workflow briefly
  /// visits a physically paused database (integrity check, metadata
  /// refresh) without changing its lifecycle state.  Valid only while
  /// physically paused — any other state returns FailedPrecondition,
  /// giving maintenance workflows the same skipped-on-state-change
  /// semantics as pre-warms.
  Status OnMaintenanceTouch(EpochSeconds now);

  DbState state() const { return state_; }
  bool active() const { return active_; }
  bool is_old() const { return old_; }

  /// True while history-store errors force reactive behavior.
  bool degraded() const { return degraded_; }

  /// The prediction currently in effect (what Algorithm 1 line 31 stores
  /// in the metadata store when physically pausing).
  const forecast::ActivityPrediction& next_activity() const {
    return next_activity_;
  }

  /// When the controller next needs OnTimerCheck (0 = none scheduled).
  EpochSeconds NextTimerAt() const { return next_timer_; }

  const Stats& stats() const { return stats_; }
  PolicyMode mode() const { return mode_; }

 private:
  /// Tracks degraded mode from the outcome of a history-store operation:
  /// a failure enters it (counted, never propagated), a success exits it.
  void NoteHistoryOutcome(const Status& s);

  /// The prediction gate used by every decision: a prediction is acted on
  /// only when it is usable AND the controller is not degraded.
  bool UsablePrediction() const { return prediction_usable_ && !degraded_; }

  /// Runs DeleteOldHistory + PredictNextActivity (lines 8-9 / 24-25).
  void RefreshPrediction(EpochSeconds now);

  /// Lines 10-12 / 26-29: should the idle database be physically paused
  /// right now?
  bool ShouldPhysicallyPause(EpochSeconds now) const;

  /// The inner wait condition of lines 19-20: must the database stay
  /// logically paused at `now`?
  bool MustStayLogicallyPaused(EpochSeconds now) const;

  /// Next boundary at which the wait condition could change.
  EpochSeconds ComputeNextBoundary(EpochSeconds now) const;

  void Transition(DbState to, EpochSeconds now, TransitionCause cause);

  void EnterLogicalPause(EpochSeconds now, TransitionCause cause);
  void EnterPhysicalPause(EpochSeconds now, TransitionCause cause);

  PolicyConfig config_;
  PolicyMode mode_;
  history::HistoryStore* history_;
  const forecast::Predictor* predictor_;
  TransitionCallback on_transition_;

  DbState state_ = DbState::kResumed;
  bool active_ = true;
  bool old_ = false;
  bool prediction_usable_ = false;  // false after a predictor failure
  bool degraded_ = false;           // history store failing; act reactive
  bool prewarmed_ = false;  // current pause was a control-plane pre-warm
  EpochSeconds last_restore_time_ = 0;  // eviction-restore cooldown anchor
  forecast::ActivityPrediction next_activity_;
  EpochSeconds pause_start_ = 0;
  EpochSeconds next_timer_ = 0;
  Stats stats_;
};

}  // namespace prorp::policy

#endif  // PRORP_POLICY_LIFECYCLE_CONTROLLER_H_
