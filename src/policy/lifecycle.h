#ifndef PRORP_POLICY_LIFECYCLE_H_
#define PRORP_POLICY_LIFECYCLE_H_

#include <string>

#include "common/time_util.h"
#include "forecast/prediction.h"

namespace prorp::policy {

/// The three states of a serverless database (paper Figure 4).
enum class DbState {
  /// Resources allocated, customer workload running, customer billed.
  kResumed,
  /// Resources allocated but idle; customer NOT billed.  Absorbs short
  /// idle intervals and pre-warmed proactive resumes.
  kLogicallyPaused,
  /// Resources reclaimed.
  kPhysicallyPaused,
};

std::string_view DbStateName(DbState state);

/// Why a state transition happened (Figure 4's labelled transitions plus
/// the operational causes).
enum class TransitionCause {
  kActivityStart,        // customer login while resources allocated
  kReactiveResume,       // customer login while physically paused
  kActivityEndLogical,   // workload ended -> logical pause (transition 2)
  kActivityEndPhysical,  // workload ended, no activity predicted soon (3)
  kLogicalPauseExpired,  // logical pause over -> physical pause (5)
  kProactiveResume,      // control plane pre-warm (4)
  kForcedEviction,       // node capacity pressure reclaimed a logical pause
};

std::string_view TransitionCauseName(TransitionCause cause);

/// Emitted on every state change; the telemetry recorder and the control
/// plane subscribe to these.
struct TransitionEvent {
  EpochSeconds time = 0;
  DbState from = DbState::kResumed;
  DbState to = DbState::kResumed;
  TransitionCause cause = TransitionCause::kActivityStart;
  /// Prediction in effect at the transition (for metadata-store writes on
  /// physical pause and for KPI attribution of proactive resumes).
  forecast::ActivityPrediction prediction;
  /// False when the policy fell back to reactive behaviour (prediction
  /// component unavailable or database too new).
  bool used_prediction = false;
};

/// What the database experienced at a customer login (the QoS signal of
/// Section 8: first logins after idle intervals, split by whether the
/// resources were available).
enum class LoginOutcome {
  kResourcesAvailable,  // resumed or logically paused: no delay
  kReactiveResume,      // physically paused: resume latency visible
  kAlreadyActive,       // overlapping activity; no state change
};

}  // namespace prorp::policy

#endif  // PRORP_POLICY_LIFECYCLE_H_
