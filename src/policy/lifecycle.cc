#include "policy/lifecycle.h"

namespace prorp::policy {

std::string_view DbStateName(DbState state) {
  switch (state) {
    case DbState::kResumed:
      return "resumed";
    case DbState::kLogicallyPaused:
      return "logically_paused";
    case DbState::kPhysicallyPaused:
      return "physically_paused";
  }
  return "unknown";
}

std::string_view TransitionCauseName(TransitionCause cause) {
  switch (cause) {
    case TransitionCause::kActivityStart:
      return "activity_start";
    case TransitionCause::kReactiveResume:
      return "reactive_resume";
    case TransitionCause::kActivityEndLogical:
      return "activity_end_logical_pause";
    case TransitionCause::kActivityEndPhysical:
      return "activity_end_physical_pause";
    case TransitionCause::kLogicalPauseExpired:
      return "logical_pause_expired";
    case TransitionCause::kProactiveResume:
      return "proactive_resume";
    case TransitionCause::kForcedEviction:
      return "forced_eviction";
  }
  return "unknown";
}

}  // namespace prorp::policy
