#ifndef PRORP_NET_MESSAGE_H_
#define PRORP_NET_MESSAGE_H_

#include <cstdint>
#include <string_view>

#include "common/config.h"
#include "common/status.h"
#include "telemetry/events.h"

namespace prorp::net {

using telemetry::DbId;

/// Addressable party on the control-plane <-> node transport.  The
/// management service owns endpoint 0; SQL nodes take 1..N.
using EndpointId = uint32_t;

inline constexpr EndpointId kControlPlaneEndpoint = 0;

/// Typed messages of the resume/pause protocol (DESIGN.md section 11).
enum class MessageType : uint8_t {
  kResumeRequest = 0,  ///< plane -> node: run one resume-workflow attempt
  kPauseRequest,       ///< plane -> node: physically pause a database
  kAck,                ///< node -> plane: request executed, OK
  kNack,               ///< node -> plane: request refused/failed (see code)
  kLeaseRenew,         ///< plane -> node: liveness/epoch advertisement
  kLeaseGrant,         ///< node -> plane: lease renewal acknowledged
};

std::string_view MessageTypeName(MessageType type);

// Envelope flag bits (replies only).
/// The node had already executed this request id; the reply repeats the
/// recorded verdict and no side effect ran (redelivery dedup).
inline constexpr uint32_t kMfDuplicateDelivery = 1u << 0;
/// The request's epoch was below the node's fence: a predecessor
/// incarnation's late message, rejected without executing anything.
inline constexpr uint32_t kMfStaleEpoch = 1u << 1;
/// The node's lease had lapsed (or the request predates a self-quiesce):
/// the agent is fenced and refused the request without executing it, so
/// the plane can safely re-place the database elsewhere.
inline constexpr uint32_t kMfLeaseExpired = 1u << 2;

/// One message on the wire.  Flat POD-style struct: the in-process
/// transports pass it by value, and a future serialized transport can
/// encode it without chasing pointers.  Request and reply share the
/// layout; unused fields stay zero.
struct Envelope {
  MessageType type = MessageType::kResumeRequest;
  EndpointId src = kControlPlaneEndpoint;
  EndpointId dst = kControlPlaneEndpoint;
  /// Dispatch identity: (epoch << 32 | seq), assigned by the management
  /// service.  Retransmissions reuse it; a hedge gets a fresh one.  The
  /// node's applied-request table dedups on it.
  uint64_t request_id = 0;
  /// Control-plane incarnation the request was sent under; replies echo
  /// the request's epoch so a recovered plane can recognize its
  /// predecessor's stragglers.
  uint64_t epoch = 0;
  EpochSeconds sent_at = 0;

  // Request payload (mirrors controlplane::ResumeAttempt).
  DbId db = 0;
  uint8_t cls = 0;
  int32_t attempt = 1;
  uint8_t node_offset = 0;
  bool hedge = false;
  EpochSeconds enqueued_at = 0;

  /// Lease-renewal payload: how long past `sent_at` the node may keep
  /// accepting work.  Zero means "probe" — the renewal solicits a grant
  /// (liveness evidence) without extending the node's lease, which is how
  /// the plane lets a suspect node's lease run out at a known bound.
  /// Replies echo the transmission's `sent_at` in `enqueued_at`, so the
  /// plane can measure per-transmission round-trip latency.
  DurationSeconds lease_ttl = 0;

  // Reply payload.
  StatusCode code = StatusCode::kOk;
  uint32_t flags = 0;
};

/// Rebuilds a Status from a wire code (the reply's `code` field).  kOk
/// maps to Status::OK() and drops the message.
Status StatusFromCode(StatusCode code, std::string_view msg);

}  // namespace prorp::net

#endif  // PRORP_NET_MESSAGE_H_
