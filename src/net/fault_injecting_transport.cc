#include "net/fault_injecting_transport.h"

#include <algorithm>

namespace prorp::net {

FaultInjectingTransport::FaultInjectingTransport(faults::FaultPlan* plan,
                                                 Options options)
    : plan_(plan), options_(options) {}

faults::FaultOp FaultInjectingTransport::OpFor(MessageType type) {
  switch (type) {
    case MessageType::kResumeRequest:
    case MessageType::kPauseRequest:
      return faults::FaultOp::kMsgRequest;
    case MessageType::kAck:
    case MessageType::kNack:
      return faults::FaultOp::kMsgAck;
    case MessageType::kLeaseRenew:
    case MessageType::kLeaseGrant:
      return faults::FaultOp::kMsgLease;
  }
  return faults::FaultOp::kMsgRequest;
}

bool FaultInjectingTransport::Partitioned(const Envelope& env) const {
  const bool to_node = env.src == kControlPlaneEndpoint;
  const EndpointId node = to_node ? env.dst : env.src;
  for (const PartitionSpec& p : partitions_) {
    if (env.sent_at < p.from || env.sent_at >= p.until) continue;
    if (node < p.first_node || node > p.last_node) continue;
    switch (p.direction) {
      case PartitionSpec::Direction::kBoth:
        return true;
      case PartitionSpec::Direction::kToNodes:
        if (to_node) return true;
        break;
      case PartitionSpec::Direction::kFromNodes:
        if (!to_node) return true;
        break;
    }
  }
  return false;
}

DurationSeconds FaultInjectingTransport::SlowDelay(const Envelope& env) const {
  if (env.src == kControlPlaneEndpoint) return 0;  // node-sent traffic only
  DurationSeconds delay = 0;
  for (const SlowNodeSpec& s : slow_nodes_) {
    if (env.src != s.node) continue;
    if (env.sent_at < s.from || env.sent_at >= s.until) continue;
    delay = std::max(delay, s.delay);
  }
  return delay;
}

void FaultInjectingTransport::Send(Envelope env) {
  ++stats_.sent;
  if (Partitioned(env)) {
    ++stats_.partitioned;
    return;
  }
  if (DurationSeconds slow = SlowDelay(env); slow > 0) {
    ++stats_.delayed;
    delayed_.push_back(Delayed{env.sent_at + slow, ++seq_, env});
    std::push_heap(delayed_.begin(), delayed_.end(), Later);
    return;
  }
  if (plan_ != nullptr) {
    if (auto d = plan_->Next(OpFor(env.type))) {
      switch (d->kind) {
        case faults::FaultKind::kMsgDrop:
          ++stats_.dropped;
          return;
        case faults::FaultKind::kMsgDuplicate:
          ++stats_.duplicated;
          DeliverNow(env, env.sent_at);
          DeliverNow(env, env.sent_at);
          return;
        case faults::FaultKind::kMsgDelay: {
          DurationSeconds span = options_.delay_max >= options_.delay_min
                                     ? options_.delay_max - options_.delay_min
                                     : 0;
          DurationSeconds delay =
              options_.delay_min +
              static_cast<DurationSeconds>(
                  d->arg % static_cast<uint64_t>(span + 1));
          ++stats_.delayed;
          delayed_.push_back(Delayed{env.sent_at + delay, ++seq_, env});
          std::push_heap(delayed_.begin(), delayed_.end(), Later);
          return;
        }
        case faults::FaultKind::kIoError:
        case faults::FaultKind::kTornWrite:
        case faults::FaultKind::kBitFlip:
        case faults::FaultKind::kDiskFull:
          break;  // disk-only kinds; meaningless at a message site
      }
    }
  }
  DeliverNow(env, env.sent_at);
}

void FaultInjectingTransport::DeliverDue(EpochSeconds now) {
  while (!delayed_.empty() && delayed_.front().at <= now) {
    std::pop_heap(delayed_.begin(), delayed_.end(), Later);
    Delayed d = delayed_.back();
    delayed_.pop_back();
    DeliverNow(d.env, std::max(d.at, d.env.sent_at));
  }
}

}  // namespace prorp::net
