#ifndef PRORP_NET_NETWORK_TORTURE_H_
#define PRORP_NET_NETWORK_TORTURE_H_

#include <string>

#include "common/result.h"
#include "net/transport.h"

namespace prorp::net {

/// One network-torture run: the recovery-torture workload (proactive
/// selections, reactive logins, pause/resume churn, optional storm and
/// resume-path outage) driven through the full transport stack — a
/// TransportDispatcher on the plane side, per-node NodeAgents on the
/// other, and a FaultInjectingTransport between them injecting drops,
/// duplicates, delays (reordering), and partitions from a seeded plan —
/// plus an optional mid-run control-plane crash/recovery.
///
/// Invariants the result exposes (the matrix test asserts them):
///  * zero accepted-login loss,
///  * zero double-applies (same request id side-effecting twice),
///  * zero stale-epoch applies (a fenced request never executes),
///  * accounting reconciles after the drain.
struct NetworkTortureOptions {
  std::string dir;  // working directory for journal + checkpoint
  uint64_t seed = 1;
  int num_dbs = 48;
  int num_nodes = 4;
  int steps = 160;  // virtual-clock steps of one minute each
  bool storm = false;    // login-spike storm mid-run
  bool outage = false;   // resume-path outage window mid-run
  int crash_at_step = -1;  // control-plane crash/recovery overlay
  // Message-fault probabilities, drawn from a transport-only RNG stream.
  double drop_p = 0.0;
  double duplicate_p = 0.0;
  double delay_p = 0.0;
  bool partition = false;  // plane <-> node-subset partition window
  /// Partition direction: -1 derives it from the seed (legacy behavior);
  /// 0/1/2 force kBoth/kToNodes/kFromNodes.  kFromNodes is the
  /// asymmetric "zombie" cell — the node keeps receiving requests (and
  /// executing them) while every ack it sends is lost one-way.
  int partition_direction = -1;
  /// Probability a node execution fails transiently.
  double fail_probability = 0.10;
  uint64_t checkpoint_every = 64;
};

struct NetworkTortureResult {
  int recoveries = 0;
  uint64_t accepted_reactive = 0;
  /// Acked logins whose database was still not resumed after the final
  /// drain — must be zero.
  uint64_t lost_reactive = 0;
  /// A request id whose side effect executed twice — must be zero (the
  /// node dedup table failed).
  uint64_t double_applies = 0;
  /// A request below the node's epoch fence reached execution — must be
  /// zero (a predecessor incarnation raced its successor).
  uint64_t stale_epoch_applied = 0;
  uint64_t duplicate_suppressed = 0;  // node dedup-table hits
  uint64_t stale_epoch_rejected = 0;  // node fence rejections
  uint64_t dispatch_timeouts = 0;
  uint64_t late_acks = 0;
  uint64_t stale_epoch_acks = 0;
  uint64_t retransmissions = 0;
  uint64_t unacked_dispatches = 0;
  uint64_t hedges = 0;
  uint64_t incidents = 0;
  uint64_t total_resumed = 0;
  bool accounting_ok = false;
  bool drained = false;
  TransportStats transport;
};

Result<NetworkTortureResult> RunNetworkTorture(
    const NetworkTortureOptions& options);

}  // namespace prorp::net

#endif  // PRORP_NET_NETWORK_TORTURE_H_
