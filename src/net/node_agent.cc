#include "net/node_agent.h"

#include <algorithm>
#include <utility>

namespace prorp::net {

NodeAgent::NodeAgent(EndpointId id, Transport* transport, Executor resume,
                     Executor pause)
    : id_(id),
      transport_(transport),
      resume_(std::move(resume)),
      pause_(std::move(pause)) {
  transport_->RegisterEndpoint(
      id_, [this](const Envelope& env, EpochSeconds now) {
        HandleMessage(env, now);
      });
}

void NodeAgent::FenceEpoch(uint64_t epoch) {
  fence_epoch_ = std::max(fence_epoch_, epoch);
}

void NodeAgent::Quiesce(EpochSeconds now) {
  // The lease lapsed: every side effect this node produced is released,
  // so the applied-request verdicts describe a world that no longer
  // exists.  Voiding the table means a post-re-lease redelivery
  // re-executes (correctly — the work has to be redone), instead of
  // re-acking a resume that is no longer live.
  ++stats_.self_quiesces;
  lease_valid_until_ = 0;
  refuse_before_ = std::max(refuse_before_, now);
  applied_.clear();
  if (quiesce_) quiesce_(now);
}

void NodeAgent::AdvanceTime(EpochSeconds now) {
  if (down_) return;
  if (lease_enforced_ && lease_valid_until_ > 0 && now > lease_valid_until_) {
    Quiesce(now);
  }
}

void NodeAgent::Restart(EpochSeconds now) {
  down_ = false;
  lease_valid_until_ = 0;
  refuse_before_ = std::max(refuse_before_, now);
  applied_.clear();
}

void NodeAgent::Reply(const Envelope& request, MessageType type,
                      StatusCode code, uint32_t flags, EpochSeconds now) {
  Envelope reply;
  reply.type = type;
  reply.src = id_;
  reply.dst = request.src;
  reply.request_id = request.request_id;
  // Replies echo the REQUEST's epoch: a recovered plane recognizes its
  // predecessor's stragglers by the old epoch coming back.
  reply.epoch = request.epoch;
  reply.sent_at = now;
  reply.db = request.db;
  reply.cls = request.cls;
  reply.attempt = request.attempt;
  reply.hedge = request.hedge;
  // Echo the transmission's send time so the plane can score this node's
  // per-transmission round-trip latency (gray-failure detection).
  reply.enqueued_at = request.sent_at;
  reply.code = code;
  reply.flags = flags;
  transport_->Send(reply);
}

void NodeAgent::HandleMessage(const Envelope& env, EpochSeconds now) {
  if (down_) return;  // crashed process: the message falls on the floor
  // Message arrival is also a clock observation: a lapsed lease fences
  // the node before anything else is considered.
  AdvanceTime(now);
  switch (env.type) {
    case MessageType::kResumeRequest:
    case MessageType::kPauseRequest: {
      ++stats_.requests;
      if (env.epoch < fence_epoch_) {
        // A previous incarnation's late message: reject, never execute.
        ++stats_.stale_epoch_rejected;
        Reply(env, MessageType::kNack, StatusCode::kFailedPrecondition,
              kMfStaleEpoch, now);
        return;
      }
      fence_epoch_ = std::max(fence_epoch_, env.epoch);
      if ((lease_enforced_ && now > lease_valid_until_) ||
          env.sent_at <= refuse_before_) {
        // Lease fence: no live lease (or the request predates a quiesce
        // or restart).  Refuse without executing — the plane will
        // re-place the database once the node is declared dead.
        ++stats_.lease_expired_rejected;
        Reply(env, MessageType::kNack, StatusCode::kUnavailable,
              kMfLeaseExpired, now);
        return;
      }
      if (auto it = applied_.find(env.request_id); it != applied_.end()) {
        // Redelivery of a request whose side effect already ran: repeat
        // the recorded verdict, execute nothing.
        ++stats_.duplicate_suppressed;
        Reply(env,
              it->second == StatusCode::kOk ? MessageType::kAck
                                            : MessageType::kNack,
              it->second, kMfDuplicateDelivery, now);
        return;
      }
      const Executor& exec =
          env.type == MessageType::kResumeRequest ? resume_ : pause_;
      if (!exec) {
        Reply(env, MessageType::kNack, StatusCode::kNotSupported, 0, now);
        return;
      }
      controlplane::ResumeAttempt attempt;
      attempt.db = env.db;
      attempt.cls = static_cast<controlplane::ResumeClass>(env.cls);
      attempt.attempt = env.attempt;
      attempt.hedge = env.hedge;
      attempt.node_offset = env.node_offset;
      attempt.enqueued_at = env.enqueued_at;
      attempt.request_id = env.request_id;
      ++stats_.executed;
      Status s = exec(attempt, now);
      if (s.ok()) applied_[env.request_id] = s.code();
      Reply(env, s.ok() ? MessageType::kAck : MessageType::kNack, s.code(),
            0, now);
      return;
    }
    case MessageType::kLeaseRenew: {
      // Lease renewals double as epoch advertisements: they raise the
      // fence even when no workflow is in flight.
      fence_epoch_ = std::max(fence_epoch_, env.epoch);
      if (env.lease_ttl > 0) {
        // The lease runs from the renewal's SEND time, not its arrival:
        // a renewal delayed in the network extends the lease no further
        // than the plane already accounted for when it sent it.
        lease_enforced_ = true;
        lease_valid_until_ =
            std::max(lease_valid_until_, env.sent_at + env.lease_ttl);
      }
      // Probes (ttl == 0) are still granted: the grant is liveness
      // evidence for the tracker, it just doesn't extend the lease.
      ++stats_.leases_granted;
      Reply(env, MessageType::kLeaseGrant, StatusCode::kOk, 0, now);
      return;
    }
    case MessageType::kAck:
    case MessageType::kNack:
    case MessageType::kLeaseGrant:
      // Replies addressed to a node (misrouted); ignore.
      return;
  }
}

}  // namespace prorp::net
