#include "net/node_agent.h"

#include <algorithm>
#include <utility>

namespace prorp::net {

NodeAgent::NodeAgent(EndpointId id, Transport* transport, Executor resume,
                     Executor pause)
    : id_(id),
      transport_(transport),
      resume_(std::move(resume)),
      pause_(std::move(pause)) {
  transport_->RegisterEndpoint(
      id_, [this](const Envelope& env, EpochSeconds now) {
        HandleMessage(env, now);
      });
}

void NodeAgent::FenceEpoch(uint64_t epoch) {
  fence_epoch_ = std::max(fence_epoch_, epoch);
}

void NodeAgent::Reply(const Envelope& request, MessageType type,
                      StatusCode code, uint32_t flags, EpochSeconds now) {
  Envelope reply;
  reply.type = type;
  reply.src = id_;
  reply.dst = request.src;
  reply.request_id = request.request_id;
  // Replies echo the REQUEST's epoch: a recovered plane recognizes its
  // predecessor's stragglers by the old epoch coming back.
  reply.epoch = request.epoch;
  reply.sent_at = now;
  reply.db = request.db;
  reply.cls = request.cls;
  reply.attempt = request.attempt;
  reply.hedge = request.hedge;
  reply.code = code;
  reply.flags = flags;
  transport_->Send(reply);
}

void NodeAgent::HandleMessage(const Envelope& env, EpochSeconds now) {
  switch (env.type) {
    case MessageType::kResumeRequest:
    case MessageType::kPauseRequest: {
      ++stats_.requests;
      if (env.epoch < fence_epoch_) {
        // A previous incarnation's late message: reject, never execute.
        ++stats_.stale_epoch_rejected;
        Reply(env, MessageType::kNack, StatusCode::kFailedPrecondition,
              kMfStaleEpoch, now);
        return;
      }
      fence_epoch_ = std::max(fence_epoch_, env.epoch);
      if (auto it = applied_.find(env.request_id); it != applied_.end()) {
        // Redelivery of a request whose side effect already ran: repeat
        // the recorded verdict, execute nothing.
        ++stats_.duplicate_suppressed;
        Reply(env,
              it->second == StatusCode::kOk ? MessageType::kAck
                                            : MessageType::kNack,
              it->second, kMfDuplicateDelivery, now);
        return;
      }
      const Executor& exec =
          env.type == MessageType::kResumeRequest ? resume_ : pause_;
      if (!exec) {
        Reply(env, MessageType::kNack, StatusCode::kNotSupported, 0, now);
        return;
      }
      controlplane::ResumeAttempt attempt;
      attempt.db = env.db;
      attempt.cls = static_cast<controlplane::ResumeClass>(env.cls);
      attempt.attempt = env.attempt;
      attempt.hedge = env.hedge;
      attempt.node_offset = env.node_offset;
      attempt.enqueued_at = env.enqueued_at;
      attempt.request_id = env.request_id;
      ++stats_.executed;
      Status s = exec(attempt, now);
      if (s.ok()) applied_[env.request_id] = s.code();
      Reply(env, s.ok() ? MessageType::kAck : MessageType::kNack, s.code(),
            0, now);
      return;
    }
    case MessageType::kLeaseRenew: {
      // Lease renewals double as epoch advertisements: they raise the
      // fence even when no workflow is in flight.
      fence_epoch_ = std::max(fence_epoch_, env.epoch);
      ++stats_.leases_granted;
      Reply(env, MessageType::kLeaseGrant, StatusCode::kOk, 0, now);
      return;
    }
    case MessageType::kAck:
    case MessageType::kNack:
    case MessageType::kLeaseGrant:
      // Replies addressed to a node (misrouted); ignore.
      return;
  }
}

}  // namespace prorp::net
