#include "net/dispatcher.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace prorp::net {

TransportDispatcher::TransportDispatcher(Transport* transport, Options options,
                                         NodeResolver resolver)
    : transport_(transport),
      options_(options),
      resolver_(std::move(resolver)) {
  transport_->RegisterEndpoint(
      kControlPlaneEndpoint,
      [this](const Envelope& env, EpochSeconds now) { HandleReply(env, now); });
}

void TransportDispatcher::set_health_tracker(
    controlplane::NodeHealthTracker* tracker) {
  health_ = tracker;
  health_registered_ = false;
}

void TransportDispatcher::set_service(controlplane::ManagementService* service) {
  service_ = service;
  // The previous incarnation's requests are dead: their ids embed the old
  // epoch, and the new service replays its unacked set from the journal.
  // Any straggler acks fall into the stale/late counters.
  outstanding_.clear();
  in_dispatch_ = false;
  inline_rid_ = 0;
  inline_result_.reset();
}

Status TransportDispatcher::DispatchResume(
    const controlplane::ResumeAttempt& attempt, EpochSeconds now) {
  Envelope env;
  env.type = MessageType::kResumeRequest;
  env.src = kControlPlaneEndpoint;
  env.dst = resolver_ ? resolver_(attempt) : options_.first_node;
  env.request_id = attempt.request_id;
  env.epoch = service_ != nullptr ? service_->epoch() : 0;
  env.sent_at = now;
  env.db = attempt.db;
  env.cls = static_cast<uint8_t>(attempt.cls);
  env.attempt = attempt.attempt;
  env.node_offset = static_cast<uint8_t>(attempt.node_offset);
  env.hedge = attempt.hedge;
  env.enqueued_at = attempt.enqueued_at;

  ++stats_.dispatched;
  outstanding_[env.request_id] = Outstanding{env, now, 1};

  // An inline transport answers before Send returns; the reply handler
  // then stashes the verdict instead of treating it as an async ack.
  in_dispatch_ = true;
  inline_rid_ = env.request_id;
  inline_result_.reset();
  transport_->Send(env);
  in_dispatch_ = false;
  if (inline_result_.has_value()) {
    ++stats_.inline_acked;
    return *inline_result_;
  }
  return Status::Pending("resume dispatch awaiting ack");
}

uint64_t TransportDispatcher::NextPauseId() {
  // Pause ids live in a reserved high band so they can never collide with
  // service-issued resume ids ((epoch << 32) | seq with seq < 2^32).
  return (0xffffffffULL << 32) | ++pause_seq_;
}

Status TransportDispatcher::DispatchPause(DbId db, EndpointId node,
                                          EpochSeconds now) {
  Envelope env;
  env.type = MessageType::kPauseRequest;
  env.src = kControlPlaneEndpoint;
  env.dst = node;
  env.request_id = NextPauseId();
  env.epoch = service_ != nullptr ? service_->epoch() : 0;
  env.sent_at = now;
  env.db = db;

  ++stats_.dispatched;
  outstanding_[env.request_id] = Outstanding{env, now, 1};
  in_dispatch_ = true;
  inline_rid_ = env.request_id;
  inline_result_.reset();
  transport_->Send(env);
  in_dispatch_ = false;
  if (inline_result_.has_value()) {
    ++stats_.inline_acked;
    return *inline_result_;
  }
  return Status::Pending("pause dispatch awaiting ack");
}

void TransportDispatcher::HandleReply(const Envelope& env, EpochSeconds now) {
  switch (env.type) {
    case MessageType::kAck:
    case MessageType::kNack: {
      const uint64_t current_epoch =
          service_ != nullptr ? service_->epoch() : 0;
      if (env.epoch != current_epoch) {
        // A predecessor incarnation's straggler.  Its request id means
        // nothing to this service; count it and move on — the recovered
        // plane already reconciled the underlying workflow.
        ++stats_.stale_epoch_acks;
        if (service_ != nullptr) service_->NoteStaleEpochAck(env.db);
        return;
      }
      auto it = outstanding_.find(env.request_id);
      if (it == outstanding_.end()) {
        // Duplicate delivery, or an ack racing a local resolution (a
        // hedge win, a timeout).  The workflow already settled; telemetry
        // only, no state transition.
        ++stats_.late_acks;
        if (service_ != nullptr) service_->NoteLateAck(env.db);
        return;
      }
      outstanding_.erase(it);
      if (health_ != nullptr && env.enqueued_at > 0 &&
          now >= env.enqueued_at) {
        // The reply echoes its request's transmission time in
        // enqueued_at: per-transmission round-trip latency for the
        // gray-failure score.
        health_->OnAckLatency(env.src, now - env.enqueued_at, now);
      }
      Status verdict = StatusFromCode(env.code, "node reply");
      if (in_dispatch_ && env.request_id == inline_rid_) {
        inline_result_ = std::move(verdict);
        return;
      }
      ++stats_.async_acked;
      if (service_ != nullptr) {
        service_->OnDispatchAck(env.db, env.request_id, verdict, now);
      }
      return;
    }
    case MessageType::kLeaseGrant: {
      ++stats_.lease_grants;
      // Thread the granting node through: per-node liveness is the whole
      // point of the lease loop (the aggregate count cannot tell a
      // healthy pool from one dead node hidden by a chatty neighbor).
      ++lease_grants_by_node_[env.src];
      if (health_ != nullptr) {
        const DurationSeconds latency =
            env.enqueued_at > 0 && now >= env.enqueued_at
                ? now - env.enqueued_at
                : 0;
        health_->OnLeaseGrant(env.src, latency, now);
      }
      return;
    }
    case MessageType::kResumeRequest:
    case MessageType::kPauseRequest:
    case MessageType::kLeaseRenew:
      // Requests addressed to the plane (misrouted); ignore.
      return;
  }
}

void TransportDispatcher::Tick(EpochSeconds now) {
  if (health_ != nullptr && !health_registered_) {
    // Register the fan-out set at the first tick's virtual time, so an
    // unseen node is neither healthy-forever nor instantly suspect.
    for (int i = 0; i < options_.num_nodes; ++i) {
      health_->Register(options_.first_node + static_cast<EndpointId>(i),
                        now);
    }
    health_registered_ = true;
  }
  transport_->DeliverDue(now);

  // Snapshot + sort so retransmission order is deterministic regardless
  // of hash-map iteration order, and so inline acks erasing entries
  // mid-loop are safe.
  std::vector<uint64_t> rids;
  rids.reserve(outstanding_.size());
  for (const auto& [rid, o] : outstanding_) {
    if (now >= o.last_sent + options_.retransmit_after) rids.push_back(rid);
  }
  std::sort(rids.begin(), rids.end());
  for (uint64_t rid : rids) {
    auto it = outstanding_.find(rid);
    if (it == outstanding_.end()) continue;  // resolved by an earlier resend
    Outstanding& o = it->second;
    if (o.transmissions < options_.max_transmissions) {
      ++stats_.retransmissions;
      ++o.transmissions;
      o.last_sent = now;
      Envelope resend = o.request;
      resend.sent_at = now;
      transport_->Send(resend);  // may inline-ack and erase `it`
    } else {
      // Transmission budget exhausted.  The outcome is UNKNOWN — the node
      // may or may not have executed — so this is reported as a timeout
      // (unacked), never as a failure; recovery reconciles it against the
      // node's actual state.
      const DbId db = o.request.db;
      outstanding_.erase(it);
      ++stats_.timeouts;
      if (service_ != nullptr) service_->OnDispatchTimeout(db, rid, now);
    }
  }

  if (options_.lease_interval > 0 && now >= next_lease_at_) {
    next_lease_at_ = now + options_.lease_interval;
    for (int i = 0; i < options_.num_nodes; ++i) {
      const EndpointId node =
          options_.first_node + static_cast<EndpointId>(i);
      Envelope lease;
      lease.type = MessageType::kLeaseRenew;
      lease.src = kControlPlaneEndpoint;
      lease.dst = node;
      lease.epoch = service_ != nullptr ? service_->epoch() : 0;
      lease.sent_at = now;
      // Healthy nodes get a real renewal; a suspect or dead node gets a
      // ttl=0 probe — liveness evidence is still solicited, but its
      // fence-safe bound stops advancing, so the node's lease runs out
      // at a time the plane already knows.
      const bool extend =
          health_ == nullptr || health_->ShouldExtendLease(node);
      lease.lease_ttl = extend ? options_.lease_ttl : 0;
      if (extend) {
        ++stats_.lease_renewals;
      } else {
        ++stats_.lease_probes;
      }
      if (health_ != nullptr) {
        health_->OnRenewalSent(node, now, lease.lease_ttl);
      }
      transport_->Send(lease);
    }
  }

  if (health_ != nullptr) health_->AdvanceTime(now);
}

}  // namespace prorp::net
