#ifndef PRORP_NET_FAULT_INJECTING_TRANSPORT_H_
#define PRORP_NET_FAULT_INJECTING_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "faults/fault_plan.h"
#include "net/transport.h"

namespace prorp::net {

/// One network partition between the control plane and a contiguous node
/// subset, active over [from, until) on the virtual clock.  Messages
/// crossing an active partition are lost (counted `partitioned`); the
/// sender learns nothing, exactly like a drop.
struct PartitionSpec {
  EpochSeconds from = 0;
  EpochSeconds until = 0;
  enum class Direction : uint8_t {
    kBoth = 0,    ///< symmetric: no message crosses either way
    kToNodes,     ///< one-way: plane -> node lost, replies still arrive
    kFromNodes,   ///< one-way: node -> plane lost, requests still arrive
  };
  Direction direction = Direction::kBoth;
  /// Node endpoints [first_node, last_node] cut off from the plane.
  EndpointId first_node = 1;
  EndpointId last_node = ~0u;
};

/// A gray-failed node over [from, until): every message it SENDS (acks,
/// grants) is deferred by a fixed `delay` on the virtual clock.  The
/// node is alive and correct — just slow — which is exactly the failure
/// mode the tracker's p99 ack scoring exists to catch.  The delay is a
/// constant, not drawn from any RNG stream, so a slow-node overlay
/// perturbs nothing else.
struct SlowNodeSpec {
  EndpointId node = 1;
  EpochSeconds from = 0;
  EpochSeconds until = 0;
  DurationSeconds delay = 0;
};

/// Transport decorator injecting message-level faults from a seeded
/// FaultPlan: drops, duplicates, and clock-based delays (reordering is
/// emergent — independently delayed messages overtake each other), plus
/// scheduled one-way/symmetric partitions.  Fault decisions draw only
/// from the plan's own RNG stream, so enabling the decorator with a null
/// or trigger-free plan perturbs no other stream and behaves exactly like
/// InProcessTransport.
class FaultInjectingTransport : public Transport {
 public:
  struct Options {
    /// Injected delivery delay bounds (seconds); the exact delay is
    /// derived from the fault decision's deterministic argument.
    DurationSeconds delay_min = 5;
    DurationSeconds delay_max = 120;
  };

  explicit FaultInjectingTransport(faults::FaultPlan* plan)
      : FaultInjectingTransport(plan, Options()) {}
  FaultInjectingTransport(faults::FaultPlan* plan, Options options);

  /// Swaps the fault plan (nullptr = fault-free from now on; messages
  /// already delayed still deliver through DeliverDue).
  void set_fault_plan(faults::FaultPlan* plan) { plan_ = plan; }

  void AddPartition(PartitionSpec spec) { partitions_.push_back(spec); }
  void AddSlowNode(SlowNodeSpec spec) { slow_nodes_.push_back(spec); }

  void Send(Envelope env) override;
  void DeliverDue(EpochSeconds now) override;
  bool Idle() const override { return delayed_.empty(); }

  /// Due time of the earliest deferred message; 0 when none.
  EpochSeconds next_delivery_at() const {
    return delayed_.empty() ? 0 : delayed_.front().at;
  }

 private:
  struct Delayed {
    EpochSeconds at = 0;
    uint64_t seq = 0;  // send order; tie-break for determinism
    Envelope env;
  };
  static bool Later(const Delayed& a, const Delayed& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  bool Partitioned(const Envelope& env) const;
  /// Fixed reply-path delay of an active slow-node window; 0 when none.
  DurationSeconds SlowDelay(const Envelope& env) const;
  static faults::FaultOp OpFor(MessageType type);

  faults::FaultPlan* plan_;
  Options options_;
  std::vector<PartitionSpec> partitions_;
  std::vector<SlowNodeSpec> slow_nodes_;
  std::vector<Delayed> delayed_;  // min-heap via Later
  uint64_t seq_ = 0;
};

}  // namespace prorp::net

#endif  // PRORP_NET_FAULT_INJECTING_TRANSPORT_H_
