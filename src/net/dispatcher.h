#ifndef PRORP_NET_DISPATCHER_H_
#define PRORP_NET_DISPATCHER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>

#include "controlplane/management_service.h"
#include "controlplane/node_health.h"
#include "net/transport.h"

namespace prorp::net {

/// Control-plane side of the transport: turns the management service's
/// resume callback into a ResumeRequest message, matches acks back to
/// dispatches, retransmits unanswered requests, and reports exhausted
/// ones as dispatch timeouts (unacked — NOT failed; the outcome is
/// unknown and recovery reconciles it against the node).
///
/// Over a fault-free inline transport every Send is answered before it
/// returns, so DispatchResume resolves synchronously with the node's
/// verdict — byte-for-byte the legacy direct-call behavior.  When the ack
/// is deferred (delayed, dropped, partitioned), DispatchResume returns
/// Status::Pending and the service parks the workflow until
/// OnDispatchAck / OnDispatchTimeout.
class TransportDispatcher {
 public:
  struct Options {
    /// Resend an unanswered request after this long.
    DurationSeconds retransmit_after = 30;
    /// Total transmissions (first send + retransmissions) before the
    /// dispatch is reported timed out.
    int max_transmissions = 4;
    /// Period of lease renewals to every node (0 disables).  Leases are
    /// liveness/epoch advertisements; with a nonzero lease_ttl (and a
    /// health tracker attached) they become the failure detector's
    /// heartbeat and the nodes' work-acceptance fence.
    DurationSeconds lease_interval = 0;
    /// TTL carried on real renewals (0 keeps leases telemetry-only: the
    /// nodes never become lease-enforced — the pre-failover behavior).
    /// When a health tracker is attached, suspect and dead nodes get
    /// ttl=0 probes instead, so their fence-safe bound stops advancing.
    DurationSeconds lease_ttl = 0;
    /// Node endpoints [first_node, first_node + num_nodes) for lease
    /// fan-out.
    EndpointId first_node = 1;
    int num_nodes = 1;
  };

  /// Maps an attempt to its destination endpoint (home node vs hedge
  /// target).  Null routes everything to `first_node`.
  using NodeResolver =
      std::function<EndpointId(const controlplane::ResumeAttempt&)>;

  struct Stats {
    uint64_t dispatched = 0;       ///< resume requests sent (first send)
    uint64_t inline_acked = 0;     ///< resolved synchronously inside Send
    uint64_t async_acked = 0;      ///< resolved later via the transport
    uint64_t retransmissions = 0;
    uint64_t timeouts = 0;         ///< budgets exhausted -> OnDispatchTimeout
    uint64_t late_acks = 0;        ///< ack for a no-longer-outstanding id
    uint64_t stale_epoch_acks = 0; ///< ack from a previous incarnation
    uint64_t lease_renewals = 0;
    uint64_t lease_probes = 0;  ///< ttl=0 renewals to non-healthy nodes
    uint64_t lease_grants = 0;
  };

  TransportDispatcher(Transport* transport, Options options,
                      NodeResolver resolver = nullptr);

  /// (Re)points the dispatcher at a service incarnation.  Clears every
  /// outstanding dispatch: the old incarnation's requests are dead — any
  /// straggler acks they still produce land in the stale/late counters.
  void set_service(controlplane::ManagementService* service);

  /// Attaches the failure detector: grants and ack latencies are fed to
  /// it per node, lease fan-out consults it (healthy nodes get real
  /// renewals, others ttl=0 probes), and Tick advances its clock.
  /// nullptr detaches.
  void set_health_tracker(controlplane::NodeHealthTracker* tracker);

  /// The management service's resume callback.  Returns the node's
  /// verdict when the ack arrived inline, Status::Pending otherwise.
  Status DispatchResume(const controlplane::ResumeAttempt& attempt,
                        EpochSeconds now);

  /// Sends a pause request (fire-and-resolve like resumes; exercised by
  /// tests — the simulator's pause path is node-local).
  Status DispatchPause(DbId db, EndpointId node, EpochSeconds now);

  /// Drives time forward: surfaces due deferred messages, retransmits
  /// unanswered requests, reports exhausted ones, renews leases.
  void Tick(EpochSeconds now);

  bool Idle() const { return outstanding_.empty(); }
  size_t outstanding() const { return outstanding_.size(); }
  const Stats& stats() const { return stats_; }

  /// Grants received from one node (the aggregate Stats::lease_grants,
  /// disaggregated by granting endpoint).
  uint64_t lease_grants_from(EndpointId node) const {
    auto it = lease_grants_by_node_.find(node);
    return it == lease_grants_by_node_.end() ? 0 : it->second;
  }

 private:
  void HandleReply(const Envelope& env, EpochSeconds now);
  uint64_t NextPauseId();

  Transport* transport_;
  Options options_;
  NodeResolver resolver_;
  controlplane::ManagementService* service_ = nullptr;
  controlplane::NodeHealthTracker* health_ = nullptr;
  bool health_registered_ = false;
  /// Per-node grant counts (ordered for deterministic inspection).
  std::map<EndpointId, uint64_t> lease_grants_by_node_;

  struct Outstanding {
    Envelope request;       // retransmissions resend this verbatim
    EpochSeconds last_sent = 0;
    int transmissions = 1;
  };
  std::unordered_map<uint64_t, Outstanding> outstanding_;

  // Inline resolution: when a Send's ack arrives before Send returns,
  // the reply handler stashes the verdict here instead of calling
  // OnDispatchAck, and DispatchResume returns it synchronously.
  bool in_dispatch_ = false;
  uint64_t inline_rid_ = 0;
  std::optional<Status> inline_result_;

  EpochSeconds next_lease_at_ = 0;
  uint64_t pause_seq_ = 0;
  Stats stats_;
};

}  // namespace prorp::net

#endif  // PRORP_NET_DISPATCHER_H_
