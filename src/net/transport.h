#ifndef PRORP_NET_TRANSPORT_H_
#define PRORP_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/message.h"

namespace prorp::net {

/// Delivery counters of one transport instance.
struct TransportStats {
  uint64_t sent = 0;         ///< Send() calls
  uint64_t delivered = 0;    ///< handler invocations (duplicates count each)
  uint64_t dropped = 0;      ///< lost to an injected drop
  uint64_t duplicated = 0;   ///< delivered twice by an injected duplicate
  uint64_t delayed = 0;      ///< deferred on the simulated clock
  uint64_t partitioned = 0;  ///< lost to an active partition
  uint64_t unroutable = 0;   ///< destination endpoint not registered
};

/// Message channel between the control plane and the nodes.  Single
/// threaded, virtual-clock driven, like the simulator it serves: Send()
/// may deliver inline (recursing into the destination handler) or defer;
/// deferred messages surface when the driver calls DeliverDue(now).
///
/// Handlers receive the delivery time alongside the envelope — for inline
/// delivery that is the send time, for a delayed message the virtual
/// instant it surfaced.
class Transport {
 public:
  using Handler = std::function<void(const Envelope&, EpochSeconds now)>;

  virtual ~Transport() = default;

  void RegisterEndpoint(EndpointId id, Handler handler) {
    endpoints_[id] = std::move(handler);
  }

  /// Hands one message to the transport.  `env.sent_at` must carry the
  /// current virtual time.
  virtual void Send(Envelope env) = 0;

  /// Delivers every deferred message whose due time is <= now, in
  /// (due time, send order) order.  Base transports defer nothing.
  virtual void DeliverDue(EpochSeconds now) { (void)now; }

  /// True when no message is waiting inside the transport.
  virtual bool Idle() const { return true; }

  const TransportStats& stats() const { return stats_; }

 protected:
  /// Invokes the destination handler (or counts the message unroutable).
  void DeliverNow(const Envelope& env, EpochSeconds now) {
    auto it = endpoints_.find(env.dst);
    if (it == endpoints_.end()) {
      ++stats_.unroutable;
      return;
    }
    ++stats_.delivered;
    it->second(env, now);
  }

  TransportStats stats_;
  std::unordered_map<EndpointId, Handler> endpoints_;
};

/// The fault-free transport: every Send delivers inline, synchronously,
/// in order — semantically identical to the legacy direct callback, which
/// is what the bit-identity regression pins down.
class InProcessTransport : public Transport {
 public:
  void Send(Envelope env) override {
    ++stats_.sent;
    DeliverNow(env, env.sent_at);
  }
};

}  // namespace prorp::net

#endif  // PRORP_NET_TRANSPORT_H_
