#include "net/message.h"

namespace prorp::net {

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kResumeRequest:
      return "resume_request";
    case MessageType::kPauseRequest:
      return "pause_request";
    case MessageType::kAck:
      return "ack";
    case MessageType::kNack:
      return "nack";
    case MessageType::kLeaseRenew:
      return "lease_renew";
    case MessageType::kLeaseGrant:
      return "lease_grant";
  }
  return "unknown";
}

Status StatusFromCode(StatusCode code, std::string_view msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(msg);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(msg);
    case StatusCode::kCorruption:
      return Status::Corruption(msg);
    case StatusCode::kIoError:
      return Status::IoError(msg);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(msg);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(msg);
    case StatusCode::kUnavailable:
      return Status::Unavailable(msg);
    case StatusCode::kNotSupported:
      return Status::NotSupported(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kTimedOut:
      return Status::TimedOut(msg);
    case StatusCode::kAborted:
      return Status::Aborted(msg);
    case StatusCode::kPending:
      return Status::Pending(msg);
  }
  return Status::Internal("unknown wire status code");
}

}  // namespace prorp::net
