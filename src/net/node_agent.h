#ifndef PRORP_NET_NODE_AGENT_H_
#define PRORP_NET_NODE_AGENT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "controlplane/management_service.h"
#include "net/transport.h"

namespace prorp::net {

/// Node-side endpoint of the resume/pause protocol: receives requests
/// from the transport, makes apply idempotent and epoch-fenced, and acks.
///
/// Idempotence: a per-node applied-request table records every request id
/// whose execution produced a side effect (the executor returned OK).  A
/// redelivery of such an id re-acks the recorded verdict without running
/// anything.  Failed attempts are deliberately NOT recorded: they had no
/// side effect, so a retransmission doubles as a retry.
///
/// Fencing: the agent tracks the highest control-plane epoch it has seen
/// (a ratchet; every message raises it, and recovery raises it explicitly
/// through FenceEpoch).  A request below the fence is a predecessor
/// incarnation's late message — it is nacked with kMfStaleEpoch and never
/// executed, so a recovered control plane can never be raced by its
/// predecessor's stragglers.
///
/// Lease fencing: when a renewal carries a nonzero lease_ttl the agent
/// becomes lease-enforced.  Its lease runs to renewal.sent_at + ttl — the
/// SEND time, so a renewal that sat in the network cannot extend the
/// lease past what the plane already accounted for.  Once the lease
/// lapses (AdvanceTime, or any message arriving after the deadline) the
/// agent self-quiesces: it releases its resumed databases through the
/// quiesce handler, voids its applied-request table (those verdicts
/// described side effects that no longer exist), and refuses every
/// request until a fresh nonzero-ttl renewal re-leases it.  This is the
/// node half of split-brain prevention — a partitioned "zombie" can never
/// still be executing work after the plane's fence-safe time.
class NodeAgent {
 public:
  /// Executes one workflow attempt on the node (the actual resume/pause
  /// side effect).  Same shape as the management service's callback.
  using Executor = std::function<Status(const controlplane::ResumeAttempt&,
                                        EpochSeconds now)>;

  /// Invoked once per self-quiesce, after the agent fenced itself: the
  /// harness releases every database this node had resumed (the side
  /// effects die with the lease).
  using QuiesceHandler = std::function<void(EpochSeconds now)>;

  struct Stats {
    uint64_t requests = 0;              ///< resume/pause requests received
    uint64_t executed = 0;              ///< executor invocations
    uint64_t duplicate_suppressed = 0;  ///< redeliveries served from table
    uint64_t stale_epoch_rejected = 0;  ///< fenced requests, never executed
    uint64_t leases_granted = 0;
    uint64_t lease_expired_rejected = 0;  ///< refused while lease lapsed
    uint64_t self_quiesces = 0;           ///< lease-lapse fence trips
  };

  /// Registers the agent as `id` on `transport`.  `pause` may be null
  /// (pause requests then nack NotSupported).
  NodeAgent(EndpointId id, Transport* transport, Executor resume,
            Executor pause = nullptr);

  /// Raises the epoch fence (never lowers it).  The recovery path calls
  /// this on every node before re-dispatching, so stragglers from the
  /// previous incarnation are dead on arrival.
  void FenceEpoch(uint64_t epoch);
  uint64_t fence_epoch() const { return fence_epoch_; }

  void set_quiesce_handler(QuiesceHandler handler) {
    quiesce_ = std::move(handler);
  }

  /// Advances the node's local clock.  A lease-enforced agent whose lease
  /// deadline has passed self-quiesces here — this is how a FULLY
  /// partitioned node (no messages arriving at all) still fences itself
  /// by the plane's known bound.
  void AdvanceTime(EpochSeconds now);

  /// Simulates process death: the agent drops every message until
  /// Restart().  The harness owns the side effects and releases them at
  /// crash time itself.
  void Crash() { down_ = true; }
  bool down() const { return down_; }

  /// Simulates process restart at `now`: the applied-request table is
  /// cleared (the crash destroyed every side effect it described, so
  /// re-execution is the correct response to a redelivery), the lease is
  /// void, and requests SENT before the restart are refused — a delayed
  /// pre-crash floater must not execute against the fresh incarnation.
  void Restart(EpochSeconds now);

  /// True while the agent holds a live lease (or was never
  /// lease-enforced).
  bool LeaseValid(EpochSeconds now) const {
    return !lease_enforced_ || now <= lease_valid_until_;
  }

  const Stats& stats() const { return stats_; }
  EndpointId id() const { return id_; }

 private:
  void HandleMessage(const Envelope& env, EpochSeconds now);
  void Reply(const Envelope& request, MessageType type, StatusCode code,
             uint32_t flags, EpochSeconds now);
  void Quiesce(EpochSeconds now);

  EndpointId id_;
  Transport* transport_;
  Executor resume_;
  Executor pause_;
  QuiesceHandler quiesce_;
  uint64_t fence_epoch_ = 0;
  bool down_ = false;
  /// Becomes true at the first nonzero-ttl renewal; from then on a valid
  /// lease is required to execute work.
  bool lease_enforced_ = false;
  EpochSeconds lease_valid_until_ = 0;
  /// Requests sent at or before this instant are refused: they predate a
  /// self-quiesce or restart, and their world no longer exists.
  EpochSeconds refuse_before_ = 0;
  /// request id -> recorded verdict of a side-effecting execution.
  std::unordered_map<uint64_t, StatusCode> applied_;
  Stats stats_;
};

}  // namespace prorp::net

#endif  // PRORP_NET_NODE_AGENT_H_
