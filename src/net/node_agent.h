#ifndef PRORP_NET_NODE_AGENT_H_
#define PRORP_NET_NODE_AGENT_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "controlplane/management_service.h"
#include "net/transport.h"

namespace prorp::net {

/// Node-side endpoint of the resume/pause protocol: receives requests
/// from the transport, makes apply idempotent and epoch-fenced, and acks.
///
/// Idempotence: a per-node applied-request table records every request id
/// whose execution produced a side effect (the executor returned OK).  A
/// redelivery of such an id re-acks the recorded verdict without running
/// anything.  Failed attempts are deliberately NOT recorded: they had no
/// side effect, so a retransmission doubles as a retry.
///
/// Fencing: the agent tracks the highest control-plane epoch it has seen
/// (a ratchet; every message raises it, and recovery raises it explicitly
/// through FenceEpoch).  A request below the fence is a predecessor
/// incarnation's late message — it is nacked with kMfStaleEpoch and never
/// executed, so a recovered control plane can never be raced by its
/// predecessor's stragglers.
class NodeAgent {
 public:
  /// Executes one workflow attempt on the node (the actual resume/pause
  /// side effect).  Same shape as the management service's callback.
  using Executor = std::function<Status(const controlplane::ResumeAttempt&,
                                        EpochSeconds now)>;

  struct Stats {
    uint64_t requests = 0;              ///< resume/pause requests received
    uint64_t executed = 0;              ///< executor invocations
    uint64_t duplicate_suppressed = 0;  ///< redeliveries served from table
    uint64_t stale_epoch_rejected = 0;  ///< fenced requests, never executed
    uint64_t leases_granted = 0;
  };

  /// Registers the agent as `id` on `transport`.  `pause` may be null
  /// (pause requests then nack NotSupported).
  NodeAgent(EndpointId id, Transport* transport, Executor resume,
            Executor pause = nullptr);

  /// Raises the epoch fence (never lowers it).  The recovery path calls
  /// this on every node before re-dispatching, so stragglers from the
  /// previous incarnation are dead on arrival.
  void FenceEpoch(uint64_t epoch);
  uint64_t fence_epoch() const { return fence_epoch_; }

  const Stats& stats() const { return stats_; }
  EndpointId id() const { return id_; }

 private:
  void HandleMessage(const Envelope& env, EpochSeconds now);
  void Reply(const Envelope& request, MessageType type, StatusCode code,
             uint32_t flags, EpochSeconds now);

  EndpointId id_;
  Transport* transport_;
  Executor resume_;
  Executor pause_;
  uint64_t fence_epoch_ = 0;
  /// request id -> recorded verdict of a side-effecting execution.
  std::unordered_map<uint64_t, StatusCode> applied_;
  Stats stats_;
};

}  // namespace prorp::net

#endif  // PRORP_NET_NODE_AGENT_H_
