#include "net/network_torture.h"

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "controlplane/durable_control_plane.h"
#include "faults/fault_plan.h"
#include "net/dispatcher.h"
#include "net/fault_injecting_transport.h"
#include "net/node_agent.h"
#include "policy/lifecycle.h"

namespace prorp::net {
namespace {

using controlplane::DurableControlPlane;
using controlplane::ResumeAttempt;

constexpr EpochSeconds kStart = 1'000'000;
constexpr DurationSeconds kStep = 60;
/// ForkStream id of the transport fault stream: message-fault decisions
/// draw only from here, never from the workload or node-failure streams.
constexpr uint64_t kTransportFaultStream = 0x6e65746661756c74ULL;  // netfault

/// The node-side truth about one database; survives control-plane
/// crashes and is the oracle recovery reconciles against.
struct SimDb {
  bool resumed = false;
  EpochSeconds resumed_at = 0;
  EpochSeconds pending_completion = 0;  // 0 = none
  bool outstanding_reactive = false;    // acked login awaiting resources
};

ControlPlaneConfig TortureConfig(const NetworkTortureOptions& opt) {
  ControlPlaneConfig config;
  config.prewarm_interval = 300;
  config.resume_operation_period = kStep;
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  config.breaker_window = 10;
  config.breaker_failure_ratio = 0.5;
  config.breaker_open_duration = 300;
  config.queue_capacity = 32;
  config.admission_control_enabled = true;
  config.deadline_hedging_enabled = true;
  config.deadline_reactive = 120;
  config.deadline_imminent = 600;
  config.storm_login_spike_threshold = opt.storm ? 16 : 0;
  config.storm_recovery_backlog = 8;
  config.storm_cooldown = 900;
  config.catch_up_enabled = true;
  config.catch_up_lookback = 3600;
  return config;
}

class Harness {
 public:
  explicit Harness(const NetworkTortureOptions& opt)
      : opt_(opt),
        dbs_(static_cast<size_t>(opt.num_dbs)),
        rng_(opt.seed * 0x9e3779b97f4a7c15ULL + 1),
        fail_rng_(opt.seed ^ 0xdeadbeefcafef00dULL),
        plan_(Rng(opt.seed).ForkStream(kTransportFaultStream).NextU64()),
        transport_(&plan_, TransportOptions()),
        dispatcher_(&transport_, DispatcherOptions(opt),
                    [this](const ResumeAttempt& a) {
                      return static_cast<EndpointId>(
                          1 + (a.db + static_cast<uint32_t>(a.node_offset)) %
                                  static_cast<uint32_t>(opt_.num_nodes));
                    }) {
    if (opt.drop_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.drop_p,
                                faults::FaultKind::kMsgDrop);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.drop_p,
                                faults::FaultKind::kMsgDrop);
    }
    if (opt.duplicate_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.duplicate_p,
                                faults::FaultKind::kMsgDuplicate);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.duplicate_p,
                                faults::FaultKind::kMsgDuplicate);
    }
    if (opt.delay_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.delay_p,
                                faults::FaultKind::kMsgDelay);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.delay_p,
                                faults::FaultKind::kMsgDelay);
    }
    if (opt.partition) {
      PartitionSpec p;
      p.from = kStart + static_cast<EpochSeconds>(opt.steps / 3) * kStep;
      p.until = p.from + 20 * kStep;
      const uint64_t dir = opt.partition_direction >= 0
                               ? static_cast<uint64_t>(opt.partition_direction)
                               : opt.seed % 3;
      switch (dir % 3) {
        case 0:
          p.direction = PartitionSpec::Direction::kBoth;
          break;
        case 1:
          p.direction = PartitionSpec::Direction::kToNodes;
          break;
        default:
          p.direction = PartitionSpec::Direction::kFromNodes;
          break;
      }
      p.first_node = 1;
      p.last_node = static_cast<EndpointId>(1 + (opt.num_nodes - 1) / 2);
      transport_.AddPartition(p);
    }
    for (int n = 0; n < opt.num_nodes; ++n) {
      agents_.push_back(std::make_unique<NodeAgent>(
          static_cast<EndpointId>(1 + n), &transport_,
          [this](const ResumeAttempt& a, EpochSeconds t) {
            return NodeResume(a, t);
          }));
    }
  }

  Result<NetworkTortureResult> Run() {
    PRORP_RETURN_IF_ERROR(Reopen(kStart));

    now_ = kStart;
    for (int i = 0; i < opt_.num_dbs; ++i) {
      EpochSeconds pred =
          rng_.NextBool(0.5)
              ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(
                                 static_cast<uint64_t>(opt_.steps) * kStep))
              : 0;
      PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
          static_cast<DbId>(i), policy::DbState::kPhysicallyPaused, pred));
    }

    const int outage_start = opt_.steps / 3;
    const int outage_end = outage_start + 5;
    const int storm_step = opt_.steps / 2;
    for (int step = 0; step < opt_.steps; ++step) {
      now_ = kStart + static_cast<EpochSeconds>(step + 1) * kStep;
      outage_now_ = opt_.outage && step >= outage_start && step < outage_end;

      if (step == opt_.crash_at_step) {
        // Control-plane crash: the incarnation dies with unacked
        // dispatches on the wire and floaters in the transport.  Recovery
        // fences every node under the new epoch before any floater can
        // deliver (the harness owns delivery, so the fencing round is
        // reliably first — the analogue of a synchronous fencing RPC).
        plane_.reset();
        ++result_.recoveries;
        PRORP_RETURN_IF_ERROR(Reopen(now_));
      }

      // Pause churn: completed databases go idle again.
      for (int i = 0; i < opt_.num_dbs; ++i) {
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (!d.resumed || d.pending_completion != 0) continue;
        if (!rng_.NextBool(0.05)) continue;
        EpochSeconds pred =
            rng_.NextBool(0.5)
                ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(600))
                : 0;
        PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
            static_cast<DbId>(i), policy::DbState::kPhysicallyPaused, pred));
        d.resumed = false;
      }

      // Reactive logins: a base trickle, plus a spike at the storm step.
      int logins = static_cast<int>(rng_.NextBelow(3));
      if (opt_.storm && step == storm_step) logins = 24;
      for (int n = 0; n < logins; ++n) {
        int i = static_cast<int>(
            rng_.NextBelow(static_cast<uint64_t>(opt_.num_dbs)));
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (d.resumed || d.outstanding_reactive) continue;
        PRORP_RETURN_IF_ERROR(
            plane_->service().EnqueueReactive(static_cast<DbId>(i), now_));
        ++result_.accepted_reactive;
        d.outstanding_reactive = true;
      }

      PRORP_RETURN_IF_ERROR(plane_->service().RunOnce(now_).status());

      // Sub-ticks between iterations: deliver due messages, retransmit,
      // time out, hedge, and drain newly requeued reactive work.
      for (DurationSeconds dt = 10; dt < kStep; dt += 10) {
        dispatcher_.Tick(now_ + dt);
        plane_->service().Pump(now_ + dt);
      }

      PRORP_RETURN_IF_ERROR(DeliverCompletions());
      PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
    }

    PRORP_RETURN_IF_ERROR(Drain());

    for (const SimDb& d : dbs_) {
      if (d.outstanding_reactive && !d.resumed) ++result_.lost_reactive;
    }
    const auto& diag = plane_->service().diagnostics();
    result_.accounting_ok = plane_->service().AccountingReconciles();
    result_.incidents = diag.incidents;
    result_.total_resumed = plane_->service().total_resumed();
    result_.dispatch_timeouts = diag.dispatch_timeouts;
    result_.late_acks = dispatcher_.stats().late_acks + diag.late_acks;
    result_.stale_epoch_acks =
        dispatcher_.stats().stale_epoch_acks + diag.stale_epoch_acks;
    result_.retransmissions = dispatcher_.stats().retransmissions;
    result_.unacked_dispatches = diag.unacked_dispatches;
    for (size_t c = 0; c < controlplane::kNumResumeClasses; ++c) {
      result_.hedges += diag.per_class[c].hedged;
    }
    for (const auto& agent : agents_) {
      result_.duplicate_suppressed += agent->stats().duplicate_suppressed;
      result_.stale_epoch_rejected += agent->stats().stale_epoch_rejected;
    }
    result_.transport = transport_.stats();
    return result_;
  }

 private:
  /// Injected delays long enough (up to ten steps) that delayed requests
  /// routinely outlive retransmission budgets, partition windows, and the
  /// control-plane crash — which is what makes the fence and the
  /// late/stale-ack paths load-bearing in every delay cell.
  static FaultInjectingTransport::Options TransportOptions() {
    FaultInjectingTransport::Options topt;
    topt.delay_min = 30;
    topt.delay_max = 600;
    return topt;
  }

  static TransportDispatcher::Options DispatcherOptions(
      const NetworkTortureOptions& opt) {
    TransportDispatcher::Options dopt;
    dopt.retransmit_after = 30;
    dopt.max_transmissions = 4;
    dopt.lease_interval = 300;
    dopt.first_node = 1;
    dopt.num_nodes = opt.num_nodes;
    return dopt;
  }

  /// The resume side effect as a node executes it — behind the agent's
  /// dedup table and epoch fence, so reaching here twice for one request
  /// id, or at all below the fence, is an invariant violation.
  Status NodeResume(const ResumeAttempt& a, EpochSeconds now) {
    SimDb& d = dbs_[a.db];
    if (outage_now_) return Status::Unavailable("resume path outage");
    if (d.resumed) return Status::FailedPrecondition("already resumed");
    if (!drain_mode_ && fail_rng_.NextBool(opt_.fail_probability)) {
      return Status::Unavailable("transient workflow failure");
    }
    if ((a.request_id >> 32) < current_epoch_) ++result_.stale_epoch_applied;
    if (!applied_rids_.insert(a.request_id).second) ++result_.double_applies;
    d.resumed = true;
    d.resumed_at = now;
    d.pending_completion = now + 30;
    return plane_->metadata().UpsertState(a.db, policy::DbState::kResumed, 0);
  }

  /// Workflow completions report over a reliable side channel (the node's
  /// resource-arrival signal), not the lossy request/ack transport.
  Status DeliverCompletions() {
    for (int i = 0; i < opt_.num_dbs; ++i) {
      SimDb& d = dbs_[static_cast<size_t>(i)];
      if (d.pending_completion == 0 || d.pending_completion > now_) continue;
      if (!d.resumed) {
        d.pending_completion = 0;  // paused again before delivery
        continue;
      }
      if (plane_->service().IsUnacked(static_cast<DbId>(i))) {
        // The resume's ack is still on the wire: the plane has no
        // in-flight entry to complete yet.  The resource-arrival signal
        // is level-triggered — hold it until the ack resolves.
        continue;
      }
      PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
          static_cast<DbId>(i), policy::DbState::kResumed, 0));
      plane_->service().CompleteWorkflow(static_cast<DbId>(i), now_);
      d.pending_completion = 0;
      d.outstanding_reactive = false;
    }
    return Status::OK();
  }

  /// Runs the clock forward fault-free until every queued, in-flight, and
  /// unacked workflow resolved and the wire is empty.
  Status Drain() {
    drain_mode_ = true;
    outage_now_ = false;
    transport_.set_fault_plan(nullptr);
    for (int iter = 0; iter < 600; ++iter) {
      if (plane_->service().pending_workflows() == 0 &&
          plane_->service().in_flight() == 0 &&
          plane_->service().unacked() == 0 && dispatcher_.Idle() &&
          transport_.Idle()) {
        result_.drained = true;
        // Flush any floaters a previous incarnation left behind (nothing
        // may remain delayed, but a paranoid final sweep costs nothing
        // and routes stragglers into the late/stale counters).
        transport_.DeliverDue(now_ + 1'000'000);
        return Status::OK();
      }
      now_ += kStep;
      PRORP_RETURN_IF_ERROR(plane_->service().RunOnce(now_).status());
      for (DurationSeconds dt = 10; dt < kStep; dt += 10) {
        dispatcher_.Tick(now_ + dt);
        plane_->service().Pump(now_ + dt);
      }
      PRORP_RETURN_IF_ERROR(DeliverCompletions());
    }
    return Status::TimedOut(
        "network torture drain did not converge: pending=" +
        std::to_string(plane_->service().pending_workflows()) +
        " in_flight=" + std::to_string(plane_->service().in_flight()) +
        " unacked=" + std::to_string(plane_->service().unacked()) +
        " outstanding=" + std::to_string(dispatcher_.outstanding()) +
        " wire_idle=" + (transport_.Idle() ? "y" : "n"));
  }

  Status Reopen(EpochSeconds now) {
    DurableControlPlane::Options popt;
    popt.dir = opt_.dir;
    popt.config = TortureConfig(opt_);
    popt.max_attempts = 8;
    popt.checkpoint_every = opt_.checkpoint_every;
    auto opened = DurableControlPlane::Open(
        popt,
        [this](const ResumeAttempt& a, EpochSeconds t) {
          return dispatcher_.DispatchResume(a, t);
        },
        [this](DbId db) { return dbs_[db].resumed; }, now);
    if (!opened.ok()) return opened.status();
    plane_ = std::move(*opened);
    // Order matters: repoint the dispatcher (killing the predecessor's
    // outstanding table), then fence every node under the new epoch —
    // all before the harness delivers another message, so a floater can
    // never execute against a stale fence.
    dispatcher_.set_service(&plane_->service());
    current_epoch_ = plane_->service().epoch();
    for (const auto& agent : agents_) agent->FenceEpoch(current_epoch_);
    return Status::OK();
  }

  const NetworkTortureOptions& opt_;
  std::vector<SimDb> dbs_;
  Rng rng_;
  Rng fail_rng_;
  faults::FaultPlan plan_;
  FaultInjectingTransport transport_;
  TransportDispatcher dispatcher_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  std::unique_ptr<DurableControlPlane> plane_;
  NetworkTortureResult result_;
  std::unordered_set<uint64_t> applied_rids_;
  uint64_t current_epoch_ = 0;
  EpochSeconds now_ = kStart;
  bool outage_now_ = false;
  bool drain_mode_ = false;
};

}  // namespace

Result<NetworkTortureResult> RunNetworkTorture(
    const NetworkTortureOptions& options) {
  Harness harness(options);
  return harness.Run();
}

}  // namespace prorp::net
