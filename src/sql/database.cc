#include "sql/database.h"

#include <algorithm>
#include <limits>

#include "sql/parser.h"

namespace prorp::sql {
namespace {

constexpr Value kMinValue = std::numeric_limits<Value>::min();
constexpr Value kMaxValue = std::numeric_limits<Value>::max();

Result<Value> Resolve(const Operand& op, const Params& params) {
  if (op.kind == Operand::Kind::kLiteral) return op.literal;
  auto it = params.find(op.parameter);
  if (it == params.end()) {
    return Status::InvalidArgument("unbound parameter @" + op.parameter);
  }
  return it->second;
}

struct ResolvedComparison {
  size_t column;
  Comparison::Op op;
  Value rhs;
};

bool EvalCmp(Value lhs, Comparison::Op op, Value rhs) {
  switch (op) {
    case Comparison::Op::kEq:
      return lhs == rhs;
    case Comparison::Op::kNe:
      return lhs != rhs;
    case Comparison::Op::kLt:
      return lhs < rhs;
    case Comparison::Op::kLe:
      return lhs <= rhs;
    case Comparison::Op::kGt:
      return lhs > rhs;
    case Comparison::Op::kGe:
      return lhs >= rhs;
  }
  return false;
}

/// Key-range extraction: conjuncts over the primary key with range
/// operators tighten [lo, hi]; everything else (including != on the key)
/// stays a residual filter evaluated per row.
struct ScanPlan {
  Value lo = kMinValue;
  Value hi = kMaxValue;
  bool provably_empty = false;
  std::vector<ResolvedComparison> residual;
};

Result<ScanPlan> PlanScan(const TableSchema& schema,
                          const std::vector<Comparison>& where,
                          const Params& params) {
  ScanPlan plan;
  for (const Comparison& cmp : where) {
    PRORP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(cmp.column));
    PRORP_ASSIGN_OR_RETURN(Value rhs, Resolve(cmp.rhs, params));
    if (col == schema.key_index) {
      switch (cmp.op) {
        case Comparison::Op::kEq:
          plan.lo = std::max(plan.lo, rhs);
          plan.hi = std::min(plan.hi, rhs);
          continue;
        case Comparison::Op::kGe:
          plan.lo = std::max(plan.lo, rhs);
          continue;
        case Comparison::Op::kGt:
          if (rhs == kMaxValue) {
            plan.provably_empty = true;
          } else {
            plan.lo = std::max(plan.lo, rhs + 1);
          }
          continue;
        case Comparison::Op::kLe:
          plan.hi = std::min(plan.hi, rhs);
          continue;
        case Comparison::Op::kLt:
          if (rhs == kMinValue) {
            plan.provably_empty = true;
          } else {
            plan.hi = std::min(plan.hi, rhs - 1);
          }
          continue;
        case Comparison::Op::kNe:
          break;  // falls through to residual
      }
    }
    plan.residual.push_back({col, cmp.op, rhs});
  }
  if (plan.lo > plan.hi) plan.provably_empty = true;
  return plan;
}

bool PassesResidual(const Row& row,
                    const std::vector<ResolvedComparison>& residual) {
  for (const ResolvedComparison& r : residual) {
    if (!EvalCmp(row[r.column], r.op, r.rhs)) return false;
  }
  return true;
}

std::string ItemName(const SelectItem& item, const TableSchema& schema) {
  if (!item.alias.empty()) return item.alias;
  switch (item.kind) {
    case SelectItem::Kind::kStar:
      return "*";
    case SelectItem::Kind::kColumn:
      return item.column;
    case SelectItem::Kind::kMin:
      return "MIN(" + item.column + ")";
    case SelectItem::Kind::kMax:
      return "MAX(" + item.column + ")";
    case SelectItem::Kind::kCountStar:
      return "COUNT(*)";
  }
  (void)schema;
  return "?";
}

}  // namespace

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const Params& params) {
  PRORP_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  return ExecuteStatement(stmt, params);
}

Result<QueryResult> Database::ExecuteStatement(const Statement& stmt,
                                               const Params& params) {
  return std::visit(
      [&](const auto& s) -> Result<QueryResult> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          return ExecCreate(s);
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          return ExecDrop(s);
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          return ExecInsert(s, params);
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          return ExecSelect(s, params);
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          return ExecDelete(s, params);
        } else {
          return ExecUpdate(s, params);
        }
      },
      stmt);
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + name + "'");
  }
  return it->second.get();
}

Result<QueryResult> Database::ExecCreate(const CreateTableStmt& stmt) {
  if (tables_.count(stmt.table)) {
    return Status::AlreadyExists("table '" + stmt.table +
                                 "' already exists");
  }
  TableSchema schema;
  schema.name = stmt.table;
  size_t pk_count = 0;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    schema.columns.push_back(stmt.columns[i].name);
    if (stmt.columns[i].primary_key) {
      schema.key_index = i;
      ++pk_count;
    }
  }
  if (pk_count != 1) {
    return Status::InvalidArgument(
        "table must declare exactly one PRIMARY KEY column");
  }
  std::string table_dir;
  if (!dir_.empty()) {
    std::string safe = stmt.table;
    std::replace(safe.begin(), safe.end(), '.', '_');
    table_dir = dir_ + "/" + safe;
  }
  PRORP_ASSIGN_OR_RETURN(
      auto table, Table::Open(std::move(schema), table_dir,
                              has_tuning_ ? &tuning_ : nullptr));
  tables_[stmt.table] = std::move(table);
  QueryResult r;
  return r;
}

Result<QueryResult> Database::ExecDrop(const DropTableStmt& stmt) {
  auto it = tables_.find(stmt.table);
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + stmt.table + "'");
  }
  tables_.erase(it);
  QueryResult r;
  return r;
}

Result<QueryResult> Database::ExecInsert(const InsertStmt& stmt,
                                         const Params& params) {
  PRORP_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  const TableSchema& schema = table->schema();
  if (stmt.values.size() !=
      (stmt.columns.empty() ? schema.num_columns() : stmt.columns.size())) {
    return Status::InvalidArgument("INSERT arity mismatch");
  }
  Row row(schema.num_columns(), 0);
  std::vector<bool> provided(schema.num_columns(), false);
  for (size_t i = 0; i < stmt.values.size(); ++i) {
    size_t col;
    if (stmt.columns.empty()) {
      col = i;
    } else {
      PRORP_ASSIGN_OR_RETURN(col, schema.ColumnIndex(stmt.columns[i]));
    }
    if (provided[col]) {
      return Status::InvalidArgument("column listed twice in INSERT");
    }
    PRORP_ASSIGN_OR_RETURN(row[col], Resolve(stmt.values[i], params));
    provided[col] = true;
  }
  for (size_t i = 0; i < provided.size(); ++i) {
    if (!provided[i]) {
      return Status::InvalidArgument("INSERT missing column '" +
                                     schema.columns[i] + "'");
    }
  }
  PRORP_RETURN_IF_ERROR(table->Insert(row));
  QueryResult r;
  r.affected_rows = 1;
  return r;
}

Result<QueryResult> Database::ExecSelect(const SelectStmt& stmt,
                                         const Params& params) {
  PRORP_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  const TableSchema& schema = table->schema();
  PRORP_ASSIGN_OR_RETURN(ScanPlan plan,
                         PlanScan(schema, stmt.where, params));

  bool has_aggregate = false;
  bool has_plain = false;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kMin ||
        item.kind == SelectItem::Kind::kMax ||
        item.kind == SelectItem::Kind::kCountStar) {
      has_aggregate = true;
    } else {
      has_plain = true;
    }
  }
  if (has_aggregate && has_plain) {
    return Status::NotSupported(
        "mixing aggregates and plain columns without GROUP BY");
  }

  QueryResult result;
  if (has_aggregate) {
    // Resolve aggregate input columns up front.
    std::vector<size_t> agg_cols(stmt.items.size(), 0);
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      result.columns.push_back(ItemName(stmt.items[i], schema));
      if (stmt.items[i].kind != SelectItem::Kind::kCountStar) {
        PRORP_ASSIGN_OR_RETURN(agg_cols[i],
                               schema.ColumnIndex(stmt.items[i].column));
      }
    }
    std::vector<Value> mins(stmt.items.size(), kMaxValue);
    std::vector<Value> maxs(stmt.items.size(), kMinValue);
    uint64_t count = 0;
    if (!plan.provably_empty) {
      PRORP_RETURN_IF_ERROR(
          table->ScanKeyRange(plan.lo, plan.hi, [&](const Row& row) {
            if (!PassesResidual(row, plan.residual)) return true;
            ++count;
            for (size_t i = 0; i < stmt.items.size(); ++i) {
              if (stmt.items[i].kind == SelectItem::Kind::kMin) {
                mins[i] = std::min(mins[i], row[agg_cols[i]]);
              } else if (stmt.items[i].kind == SelectItem::Kind::kMax) {
                maxs[i] = std::max(maxs[i], row[agg_cols[i]]);
              }
            }
            return true;
          }));
    }
    Row out(stmt.items.size(), 0);
    result.nulls.assign(stmt.items.size(), false);
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      switch (stmt.items[i].kind) {
        case SelectItem::Kind::kCountStar:
          out[i] = static_cast<Value>(count);
          break;
        case SelectItem::Kind::kMin:
          out[i] = mins[i];
          result.nulls[i] = (count == 0);
          break;
        case SelectItem::Kind::kMax:
          out[i] = maxs[i];
          result.nulls[i] = (count == 0);
          break;
        default:
          break;
      }
    }
    result.rows.push_back(std::move(out));
    return result;
  }

  // Plain projection.
  std::vector<size_t> out_cols;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kStar) {
      for (size_t i = 0; i < schema.num_columns(); ++i) {
        out_cols.push_back(i);
        result.columns.push_back(schema.columns[i]);
      }
    } else {
      PRORP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(item.column));
      out_cols.push_back(col);
      result.columns.push_back(ItemName(item, schema));
    }
  }
  std::vector<Row> matching;
  if (!plan.provably_empty) {
    PRORP_RETURN_IF_ERROR(
        table->ScanKeyRange(plan.lo, plan.hi, [&](const Row& row) {
          if (PassesResidual(row, plan.residual)) matching.push_back(row);
          return true;
        }));
  }
  if (stmt.order_by.has_value()) {
    PRORP_ASSIGN_OR_RETURN(size_t sort_col,
                           schema.ColumnIndex(stmt.order_by->column));
    bool asc = stmt.order_by->ascending;
    std::stable_sort(matching.begin(), matching.end(),
                     [&](const Row& a, const Row& b) {
                       return asc ? a[sort_col] < b[sort_col]
                                  : a[sort_col] > b[sort_col];
                     });
  }
  size_t limit = matching.size();
  if (stmt.limit.has_value() && *stmt.limit >= 0 &&
      static_cast<size_t>(*stmt.limit) < limit) {
    limit = static_cast<size_t>(*stmt.limit);
  }
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    Row out;
    out.reserve(out_cols.size());
    for (size_t col : out_cols) out.push_back(matching[i][col]);
    result.rows.push_back(std::move(out));
  }
  return result;
}

Result<QueryResult> Database::ExecDelete(const DeleteStmt& stmt,
                                         const Params& params) {
  PRORP_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  PRORP_ASSIGN_OR_RETURN(ScanPlan plan,
                         PlanScan(table->schema(), stmt.where, params));
  QueryResult r;
  if (plan.provably_empty) return r;
  if (plan.residual.empty()) {
    // Pure key-range delete: one logical DeleteRange (Algorithm 3's path).
    PRORP_ASSIGN_OR_RETURN(uint64_t n,
                           table->durable_tree()->DeleteRange(plan.lo,
                                                              plan.hi));
    r.affected_rows = n;
    return r;
  }
  std::vector<Value> keys;
  size_t key_index = table->schema().key_index;
  PRORP_RETURN_IF_ERROR(
      table->ScanKeyRange(plan.lo, plan.hi, [&](const Row& row) {
        if (PassesResidual(row, plan.residual)) {
          keys.push_back(row[key_index]);
        }
        return true;
      }));
  for (Value key : keys) {
    PRORP_RETURN_IF_ERROR(table->DeleteByKey(key));
  }
  r.affected_rows = keys.size();
  return r;
}

Result<QueryResult> Database::ExecUpdate(const UpdateStmt& stmt,
                                         const Params& params) {
  PRORP_ASSIGN_OR_RETURN(Table * table, GetTable(stmt.table));
  const TableSchema& schema = table->schema();
  PRORP_ASSIGN_OR_RETURN(ScanPlan plan,
                         PlanScan(schema, stmt.where, params));
  std::vector<std::pair<size_t, Value>> sets;
  bool updates_key = false;
  for (const auto& [col_name, operand] : stmt.assignments) {
    PRORP_ASSIGN_OR_RETURN(size_t col, schema.ColumnIndex(col_name));
    PRORP_ASSIGN_OR_RETURN(Value v, Resolve(operand, params));
    if (col == schema.key_index) updates_key = true;
    sets.emplace_back(col, v);
  }
  QueryResult r;
  if (plan.provably_empty) return r;
  std::vector<Row> matching;
  PRORP_RETURN_IF_ERROR(
      table->ScanKeyRange(plan.lo, plan.hi, [&](const Row& row) {
        if (PassesResidual(row, plan.residual)) matching.push_back(row);
        return true;
      }));
  for (const Row& old_row : matching) {
    Row new_row = old_row;
    for (const auto& [col, v] : sets) new_row[col] = v;
    if (updates_key &&
        new_row[schema.key_index] != old_row[schema.key_index]) {
      PRORP_RETURN_IF_ERROR(table->DeleteByKey(old_row[schema.key_index]));
      Status s = table->Insert(new_row);
      if (!s.ok()) return s;
    } else {
      PRORP_RETURN_IF_ERROR(
          table->UpdateByKey(old_row[schema.key_index], new_row));
    }
  }
  r.affected_rows = matching.size();
  return r;
}

}  // namespace prorp::sql
