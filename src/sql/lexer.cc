#include "sql/lexer.h"

#include <cctype>
#include <unordered_set>

namespace prorp::sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "CREATE", "TABLE",  "DROP",   "PRIMARY", "KEY",    "BIGINT",
      "INT",    "INSERT", "INTO",   "VALUES",  "SELECT", "FROM",
      "WHERE",  "AND",    "ORDER",  "BY",      "ASC",    "DESC",
      "LIMIT",  "DELETE", "UPDATE", "SET",     "MIN",    "MAX",
      "COUNT",  "AS",     "NULL",   "IS",      "NOT",    "EXISTS",
      "IF",     "BETWEEN",
  };
  return *kKeywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

bool IsIdentStart(char c) { return std::isalpha(c) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(c) || c == '_'; }

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token t;
      t.offset = start;
      if (Keywords().count(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < n && (IsIdentStart(input[j]) || input[j] == '.')) {
        return Status::InvalidArgument(
            "malformed numeric literal at offset " + std::to_string(start));
      }
      Token t;
      t.type = TokenType::kInteger;
      t.text = input.substr(i, j - i);
      t.offset = start;
      errno = 0;
      t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      if (errno != 0) {
        return Status::InvalidArgument("integer literal out of range");
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      if (j >= n || !IsIdentStart(input[j])) {
        return Status::InvalidArgument("dangling '@' at offset " +
                                       std::to_string(start));
      }
      while (j < n && IsIdentChar(input[j])) ++j;
      Token t;
      t.type = TokenType::kParameter;
      t.text = input.substr(i + 1, j - i - 1);
      t.offset = start;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Two-character comparison operators.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        Token t;
        t.type = TokenType::kSymbol;
        t.text = (two == "<>") ? "!=" : two;
        t.offset = start;
        tokens.push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '*':
      case '.':
      case ';':
      case '=':
      case '<':
      case '>':
      case '-': {
        Token t;
        t.type = TokenType::kSymbol;
        t.text = std::string(1, c);
        t.offset = start;
        tokens.push_back(std::move(t));
        ++i;
        break;
      }
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(start));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace prorp::sql
