#ifndef PRORP_SQL_PARSER_H_
#define PRORP_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace prorp::sql {

/// Parses a single SQL statement of the ProRP subset:
///   CREATE TABLE t (c1 BIGINT PRIMARY KEY, c2 INT, ...)
///   DROP TABLE t
///   INSERT INTO t [(cols)] VALUES (v, ...)
///   SELECT {* | cols | MIN(c) | MAX(c) | COUNT(*)} FROM t
///     [WHERE conj] [ORDER BY c [ASC|DESC]] [LIMIT n]
///   DELETE FROM t [WHERE conj]
///   UPDATE t SET c = v [, ...] [WHERE conj]
/// where conj is an AND-list of comparisons (=, !=, <, <=, >, >=, BETWEEN)
/// against integer literals or @parameters.  Table names may be qualified
/// (sys.pause_resume_history).
Result<Statement> Parse(const std::string& sql);

}  // namespace prorp::sql

#endif  // PRORP_SQL_PARSER_H_
