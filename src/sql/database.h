#ifndef PRORP_SQL_DATABASE_H_
#define PRORP_SQL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/table.h"
#include "sql/value.h"

namespace prorp::sql {

/// Named parameter bindings for @parameters, mirroring stored-procedure
/// arguments (Algorithms 2-4 are executed with @h, @now, @c, ... bound).
using Params = std::unordered_map<std::string, Value>;

/// A minimal single-schema SQL database: a catalog of integer tables plus
/// an executor for the parsed statement forms.  Predicates on the primary
/// key become B+tree range scans (the planner extracts key bounds from the
/// WHERE conjunction); everything else is a residual filter.
///
/// This is the "familiar SQL interface" the paper requires of the history
/// store (Section 3.3) and the substrate the stored procedures of
/// Algorithms 2-4 run on.
class Database {
 public:
  /// `dir` empty => all tables ephemeral.  Otherwise each table persists
  /// under dir/<table-name> and CREATE TABLE recovers existing state.
  explicit Database(std::string dir = "") : dir_(std::move(dir)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes one statement.
  Result<QueryResult> Execute(const std::string& sql,
                              const Params& params = {});

  /// Executes an already-parsed statement (hot paths cache parses).
  Result<QueryResult> ExecuteStatement(const Statement& stmt,
                                       const Params& params);

  /// Direct access to a table for C++-level fast paths.
  Result<Table*> GetTable(const std::string& name);
  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  const std::string& dir() const { return dir_; }

  /// Storage knobs applied to every table created after this call
  /// (checkpoint threshold, fsync policy, fault plan).  dir/value_width
  /// fields are ignored.  Used by crash-torture tests to open the SQL
  /// stack over a faulty disk.
  void set_storage_tuning(const storage::DurableTree::Options& tuning) {
    tuning_ = tuning;
    has_tuning_ = true;
  }

 private:
  Result<QueryResult> ExecCreate(const CreateTableStmt& stmt);
  Result<QueryResult> ExecDrop(const DropTableStmt& stmt);
  Result<QueryResult> ExecInsert(const InsertStmt& stmt,
                                 const Params& params);
  Result<QueryResult> ExecSelect(const SelectStmt& stmt,
                                 const Params& params);
  Result<QueryResult> ExecDelete(const DeleteStmt& stmt,
                                 const Params& params);
  Result<QueryResult> ExecUpdate(const UpdateStmt& stmt,
                                 const Params& params);

  std::string dir_;
  storage::DurableTree::Options tuning_;
  bool has_tuning_ = false;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace prorp::sql

#endif  // PRORP_SQL_DATABASE_H_
