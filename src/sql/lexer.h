#ifndef PRORP_SQL_LEXER_H_
#define PRORP_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace prorp::sql {

enum class TokenType {
  kIdentifier,   // table / column names (case preserved)
  kKeyword,      // normalized to upper case
  kInteger,      // 64-bit literal
  kParameter,    // @name
  kSymbol,       // ( ) , * . ; = < > <= >= != <>
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;     // keyword upper-cased; symbol text; identifier as-is
  int64_t int_value = 0;
  size_t offset = 0;    // byte offset in the input, for error messages
};

/// Tokenizes a single SQL statement.  Keywords are recognized
/// case-insensitively.  Returns InvalidArgument on unknown characters or
/// malformed literals.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace prorp::sql

#endif  // PRORP_SQL_LEXER_H_
