#ifndef PRORP_SQL_AST_H_
#define PRORP_SQL_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace prorp::sql {

/// A scalar operand in VALUES / SET / WHERE: an integer literal or a bound
/// parameter (@name), mirroring the stored-procedure parameters of
/// Algorithms 2-4.
struct Operand {
  enum class Kind { kLiteral, kParameter };
  Kind kind = Kind::kLiteral;
  int64_t literal = 0;
  std::string parameter;  // name without '@'
};

/// One conjunct of a WHERE clause: <column> <op> <operand>.
struct Comparison {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  Operand rhs;
};

struct ColumnDef {
  std::string name;
  bool primary_key = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct DropTableStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<Operand> values;
};

struct SelectItem {
  enum class Kind { kStar, kColumn, kMin, kMax, kCountStar };
  Kind kind = Kind::kStar;
  std::string column;  // for kColumn/kMin/kMax
  std::string alias;   // optional output name
};

struct OrderBy {
  std::string column;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<Comparison> where;
  std::optional<OrderBy> order_by;
  std::optional<int64_t> limit;
};

struct DeleteStmt {
  std::string table;
  std::vector<Comparison> where;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Operand>> assignments;
  std::vector<Comparison> where;
};

using Statement = std::variant<CreateTableStmt, DropTableStmt, InsertStmt,
                               SelectStmt, DeleteStmt, UpdateStmt>;

}  // namespace prorp::sql

#endif  // PRORP_SQL_AST_H_
