#ifndef PRORP_SQL_VALUE_H_
#define PRORP_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace prorp::sql {

/// The SQL subset used by the ProRP stored procedures is integer-only:
/// sys.pause_resume_history stores epoch timestamps and event types as
/// 64-bit integers (paper Section 5), and sys.databases stores ids, state
/// enums, and predicted-activity timestamps.
using Value = int64_t;

/// NULL is represented out-of-band: aggregate results over empty ranges
/// carry a null flag (mirrors "IF @firstLogin IS NOT NULL" in Algorithm 4).
struct NullableValue {
  Value value = 0;
  bool is_null = true;
};

using Row = std::vector<Value>;

/// Result set of a SELECT (or the affected-row count of a mutation).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  /// For aggregate queries, per-column null flags of the single result row.
  std::vector<bool> nulls;
  /// Rows affected by INSERT/DELETE/UPDATE.
  uint64_t affected_rows = 0;

  bool empty() const { return rows.empty(); }

  /// Convenience accessor: single-cell result (aggregates).  The caller
  /// must know the shape.
  NullableValue Cell() const {
    NullableValue v;
    if (!rows.empty() && !rows[0].empty()) {
      v.value = rows[0][0];
      v.is_null = !nulls.empty() && nulls[0];
    }
    return v;
  }
};

}  // namespace prorp::sql

#endif  // PRORP_SQL_VALUE_H_
