#include "sql/parser.h"

#include <vector>

#include "sql/lexer.h"

namespace prorp::sql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (AcceptKeyword("CREATE")) return ParseCreateTable();
    if (AcceptKeyword("DROP")) return ParseDropTable();
    if (AcceptKeyword("INSERT")) return ParseInsert();
    if (AcceptKeyword("SELECT")) return ParseSelect();
    if (AcceptKeyword("DELETE")) return ParseDelete();
    if (AcceptKeyword("UPDATE")) return ParseUpdate();
    return Err("expected a statement keyword");
  }

  Status ExpectEnd() {
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Status::InvalidArgument("trailing tokens after statement: '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const std::string& kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string& sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument("expected " + kw + " before '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument("expected '" + sym + "' before '" +
                                     Peek().text + "'");
    }
    return Status::OK();
  }

  Status Err(const std::string& msg) {
    return Status::InvalidArgument(msg + " (at offset " +
                                   std::to_string(Peek().offset) + ")");
  }

  /// Possibly qualified name: ident ('.' ident)*.
  Result<std::string> ParseName() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string name = Advance().text;
    while (Peek().type == TokenType::kSymbol && Peek().text == ".") {
      ++pos_;
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected identifier after '.'");
      }
      name += ".";
      name += Advance().text;
    }
    return name;
  }

  Result<Operand> ParseOperand() {
    Operand op;
    bool negative = AcceptSymbol("-");
    if (Peek().type == TokenType::kInteger) {
      op.kind = Operand::Kind::kLiteral;
      op.literal = Advance().int_value;
      if (negative) op.literal = -op.literal;
      return op;
    }
    if (Peek().type == TokenType::kParameter) {
      if (negative) {
        return Status::InvalidArgument("cannot negate a parameter");
      }
      op.kind = Operand::Kind::kParameter;
      op.parameter = Advance().text;
      return op;
    }
    return Status::InvalidArgument("expected integer literal or @parameter, "
                                   "got '" + Peek().text + "'");
  }

  Result<std::vector<Comparison>> ParseWhere() {
    std::vector<Comparison> conj;
    do {
      // A conjunct can also be written "<operand> <op> <column>", as in
      // Algorithm 4's "@winStartPrevDay <= time_snapshot"; normalize to
      // column-on-the-left form.
      if (Peek().type == TokenType::kIdentifier) {
        PRORP_ASSIGN_OR_RETURN(std::string column, ParseName());
        PRORP_ASSIGN_OR_RETURN(Comparison cmp, ParseTail(column));
        if (cmp.op == Comparison::Op::kEq &&
            cmp.column == "__between_lo__") {
          // ParseTail encoded BETWEEN as two conjuncts in pending_.
          conj.push_back(pending_[0]);
          conj.push_back(pending_[1]);
          pending_.clear();
        } else {
          conj.push_back(std::move(cmp));
        }
      } else {
        PRORP_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
        PRORP_ASSIGN_OR_RETURN(Comparison::Op op, ParseCompareOp());
        PRORP_ASSIGN_OR_RETURN(std::string column, ParseName());
        Comparison cmp;
        cmp.column = std::move(column);
        cmp.op = Mirror(op);
        cmp.rhs = lhs;
        conj.push_back(std::move(cmp));
      }
    } while (AcceptKeyword("AND"));
    return conj;
  }

  /// After the column of a conjunct: either a comparison operator and an
  /// operand, or BETWEEN lo AND hi (expanded into two conjuncts).
  Result<Comparison> ParseTail(const std::string& column) {
    if (AcceptKeyword("BETWEEN")) {
      PRORP_ASSIGN_OR_RETURN(Operand lo, ParseOperand());
      PRORP_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PRORP_ASSIGN_OR_RETURN(Operand hi, ParseOperand());
      Comparison a;
      a.column = column;
      a.op = Comparison::Op::kGe;
      a.rhs = lo;
      Comparison b;
      b.column = column;
      b.op = Comparison::Op::kLe;
      b.rhs = hi;
      pending_ = {a, b};
      Comparison marker;
      marker.column = "__between_lo__";
      marker.op = Comparison::Op::kEq;
      return marker;
    }
    PRORP_ASSIGN_OR_RETURN(Comparison::Op op, ParseCompareOp());
    PRORP_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    Comparison cmp;
    cmp.column = column;
    cmp.op = op;
    cmp.rhs = std::move(rhs);
    return cmp;
  }

  Result<Comparison::Op> ParseCompareOp() {
    if (Peek().type != TokenType::kSymbol) {
      return Status::InvalidArgument("expected comparison operator, got '" +
                                     Peek().text + "'");
    }
    std::string sym = Advance().text;
    if (sym == "=") return Comparison::Op::kEq;
    if (sym == "!=") return Comparison::Op::kNe;
    if (sym == "<") return Comparison::Op::kLt;
    if (sym == "<=") return Comparison::Op::kLe;
    if (sym == ">") return Comparison::Op::kGt;
    if (sym == ">=") return Comparison::Op::kGe;
    return Status::InvalidArgument("unknown comparison operator '" + sym +
                                   "'");
  }

  static Comparison::Op Mirror(Comparison::Op op) {
    switch (op) {
      case Comparison::Op::kLt:
        return Comparison::Op::kGt;
      case Comparison::Op::kLe:
        return Comparison::Op::kGe;
      case Comparison::Op::kGt:
        return Comparison::Op::kLt;
      case Comparison::Op::kGe:
        return Comparison::Op::kLe;
      default:
        return op;  // = and != are symmetric
    }
  }

  Result<Statement> ParseCreateTable() {
    PRORP_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStmt stmt;
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    PRORP_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      ColumnDef col;
      PRORP_ASSIGN_OR_RETURN(col.name, ParseName());
      if (!AcceptKeyword("BIGINT") && !AcceptKeyword("INT")) {
        return Err("expected column type BIGINT or INT");
      }
      if (AcceptKeyword("PRIMARY")) {
        PRORP_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        col.primary_key = true;
      }
      stmt.columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    PRORP_RETURN_IF_ERROR(ExpectSymbol(")"));
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDropTable() {
    PRORP_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStmt stmt;
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    PRORP_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    if (AcceptSymbol("(")) {
      do {
        PRORP_ASSIGN_OR_RETURN(std::string col, ParseName());
        stmt.columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      PRORP_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    PRORP_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    PRORP_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      PRORP_ASSIGN_OR_RETURN(Operand v, ParseOperand());
      stmt.values.push_back(std::move(v));
    } while (AcceptSymbol(","));
    PRORP_RETURN_IF_ERROR(ExpectSymbol(")"));
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    do {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else if (AcceptKeyword("MIN") || AcceptKeyword("MAX")) {
        bool is_min = tokens_[pos_ - 1].text == "MIN";
        item.kind = is_min ? SelectItem::Kind::kMin : SelectItem::Kind::kMax;
        PRORP_RETURN_IF_ERROR(ExpectSymbol("("));
        PRORP_ASSIGN_OR_RETURN(item.column, ParseName());
        PRORP_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else if (AcceptKeyword("COUNT")) {
        item.kind = SelectItem::Kind::kCountStar;
        PRORP_RETURN_IF_ERROR(ExpectSymbol("("));
        PRORP_RETURN_IF_ERROR(ExpectSymbol("*"));
        PRORP_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        item.kind = SelectItem::Kind::kColumn;
        PRORP_ASSIGN_OR_RETURN(item.column, ParseName());
      }
      if (AcceptKeyword("AS")) {
        PRORP_ASSIGN_OR_RETURN(item.alias, ParseName());
      }
      stmt.items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    PRORP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    if (AcceptKeyword("WHERE")) {
      PRORP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    if (AcceptKeyword("ORDER")) {
      PRORP_RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy ob;
      PRORP_ASSIGN_OR_RETURN(ob.column, ParseName());
      if (AcceptKeyword("DESC")) {
        ob.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      stmt.order_by = ob;
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Err("expected integer after LIMIT");
      }
      stmt.limit = Advance().int_value;
    }
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    PRORP_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    if (AcceptKeyword("WHERE")) {
      PRORP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseUpdate() {
    UpdateStmt stmt;
    PRORP_ASSIGN_OR_RETURN(stmt.table, ParseName());
    PRORP_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      PRORP_ASSIGN_OR_RETURN(std::string col, ParseName());
      PRORP_RETURN_IF_ERROR(ExpectSymbol("="));
      PRORP_ASSIGN_OR_RETURN(Operand v, ParseOperand());
      stmt.assignments.emplace_back(std::move(col), std::move(v));
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) {
      PRORP_ASSIGN_OR_RETURN(stmt.where, ParseWhere());
    }
    PRORP_RETURN_IF_ERROR(ExpectEnd());
    return Statement(std::move(stmt));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::vector<Comparison> pending_;  // BETWEEN expansion buffer
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  PRORP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace prorp::sql
