#include "sql/table.h"

#include <cstring>

namespace prorp::sql {

Result<size_t> TableSchema::ColumnIndex(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == column) return i;
  }
  return Status::InvalidArgument("unknown column '" + column + "' in table " +
                                 name);
}

Result<std::unique_ptr<Table>> Table::Open(
    TableSchema schema, const std::string& dir,
    const storage::DurableTree::Options* tuning) {
  if (schema.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  if (schema.key_index >= schema.columns.size()) {
    return Status::InvalidArgument("key_index out of range");
  }
  storage::DurableTree::Options opts;
  if (tuning != nullptr) opts = *tuning;
  opts.dir = dir;
  opts.value_width =
      static_cast<uint32_t>((schema.columns.size() - 1) * sizeof(Value));
  PRORP_ASSIGN_OR_RETURN(auto tree, storage::DurableTree::Open(opts));
  return std::unique_ptr<Table>(
      new Table(std::move(schema), std::move(tree)));
}

std::vector<uint8_t> Table::PackValue(const Row& row) const {
  std::vector<uint8_t> value((schema_.num_columns() - 1) * sizeof(Value));
  size_t slot = 0;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i == schema_.key_index) continue;
    std::memcpy(value.data() + slot * sizeof(Value), &row[i], sizeof(Value));
    ++slot;
  }
  return value;
}

Row Table::UnpackRow(int64_t key, const uint8_t* value) const {
  Row row(schema_.num_columns());
  size_t slot = 0;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i == schema_.key_index) {
      row[i] = key;
    } else {
      std::memcpy(&row[i], value + slot * sizeof(Value), sizeof(Value));
      ++slot;
    }
  }
  return row;
}

Status Table::Insert(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name);
  }
  std::vector<uint8_t> value = PackValue(row);
  Status s = tree_->Insert(row[schema_.key_index], value.data());
  if (s.IsAlreadyExists()) {
    return Status::AlreadyExists("duplicate primary key in table " +
                                 schema_.name);
  }
  return s;
}

Status Table::DeleteByKey(Value key) { return tree_->Delete(key); }

Status Table::UpdateByKey(Value key, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name);
  }
  if (row[schema_.key_index] != key) {
    return Status::InvalidArgument(
        "UpdateByKey cannot change the primary key");
  }
  std::vector<uint8_t> value = PackValue(row);
  return tree_->Update(key, value.data());
}

Result<Row> Table::FindByKey(Value key) const {
  PRORP_ASSIGN_OR_RETURN(std::vector<uint8_t> value, tree_->Find(key));
  return UnpackRow(key, value.data());
}

Status Table::ScanKeyRange(
    Value lo, Value hi, const std::function<bool(const Row&)>& cb) const {
  return tree_->ScanRange(lo, hi, [&](int64_t key, const uint8_t* value) {
    return cb(UnpackRow(key, value));
  });
}

}  // namespace prorp::sql
