#ifndef PRORP_SQL_TABLE_H_
#define PRORP_SQL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sql/value.h"
#include "storage/durable_tree.h"

namespace prorp::sql {

/// Schema of a ProRP table: named 64-bit integer columns with exactly one
/// primary-key column, which becomes the clustered B+tree key.
struct TableSchema {
  std::string name;
  std::vector<std::string> columns;
  size_t key_index = 0;

  Result<size_t> ColumnIndex(const std::string& column) const;
  size_t num_columns() const { return columns.size(); }
};

/// A single clustered table over a DurableTree.  Rows are fixed-width:
/// the primary key is the tree key, all other columns are packed into the
/// tree value in schema order.
class Table {
 public:
  /// Creates (or, if `dir` already holds durable state, recovers) a table.
  /// `dir` empty => ephemeral.  `tuning`, when given, supplies the storage
  /// knobs (checkpoint threshold, fsync policy, fault plan); its dir and
  /// value_width fields are ignored — they are derived from `dir` and the
  /// schema.
  static Result<std::unique_ptr<Table>> Open(
      TableSchema schema, const std::string& dir,
      const storage::DurableTree::Options* tuning = nullptr);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Inserts a row in schema order.  AlreadyExists on duplicate key.
  Status Insert(const Row& row);

  /// Deletes by primary key.  NotFound if absent.
  Status DeleteByKey(Value key);

  /// Overwrites the non-key columns of the row with this key.
  Status UpdateByKey(Value key, const Row& row);

  /// Point lookup by primary key.
  Result<Row> FindByKey(Value key) const;

  /// Visits rows with key in [lo, hi] ascending.  Return false to stop.
  Status ScanKeyRange(Value lo, Value hi,
                      const std::function<bool(const Row&)>& cb) const;

  uint64_t size() const { return tree_->size(); }
  const TableSchema& schema() const { return schema_; }

  /// Logical byte footprint (Figure 10(b) metric).
  uint64_t LogicalSizeBytes() const { return tree_->LogicalSizeBytes(); }

  storage::DurableTree* durable_tree() { return tree_.get(); }
  const storage::DurableTree& durable_tree() const { return *tree_; }

 private:
  Table(TableSchema schema, std::unique_ptr<storage::DurableTree> tree)
      : schema_(std::move(schema)), tree_(std::move(tree)) {}

  std::vector<uint8_t> PackValue(const Row& row) const;
  Row UnpackRow(int64_t key, const uint8_t* value) const;

  TableSchema schema_;
  std::unique_ptr<storage::DurableTree> tree_;
};

}  // namespace prorp::sql

#endif  // PRORP_SQL_TABLE_H_
