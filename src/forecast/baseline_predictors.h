#ifndef PRORP_FORECAST_BASELINE_PREDICTORS_H_
#define PRORP_FORECAST_BASELINE_PREDICTORS_H_

#include <string>

#include "forecast/predictor.h"

namespace prorp::forecast {

/// Predicts nothing, ever.  Under Algorithm 1 this turns the proactive
/// policy into "physically pause old databases immediately when idle";
/// used by the ablation bench to isolate the value of prediction.
class NeverPredictor : public Predictor {
 public:
  Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore&, EpochSeconds) const override {
    return ActivityPrediction::None();
  }
  std::string name() const override { return "never"; }
};

/// Always fails with Unavailable.  Drives the "Default to Reactive
/// Database-Scoped Decisions" design principle (Section 3.2): when any
/// ProRP component is down, the policy must degrade to the reactive
/// baseline.  Used by failure-injection tests.
class FailingPredictor : public Predictor {
 public:
  Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore&, EpochSeconds) const override {
    return Status::Unavailable("prediction component is down");
  }
  std::string name() const override { return "failing"; }
};

/// Oracle that always predicts activity `delay` seconds from now lasting
/// `duration`.  Only for unit tests that need a controllable prediction.
class FixedDelayPredictor : public Predictor {
 public:
  FixedDelayPredictor(DurationSeconds delay, DurationSeconds duration)
      : delay_(delay), duration_(duration) {}

  Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore&, EpochSeconds now) const override {
    ActivityPrediction p;
    p.start = now + delay_;
    p.end = p.start + duration_;
    p.confidence = 1.0;
    return p;
  }
  std::string name() const override { return "fixed_delay"; }

 private:
  DurationSeconds delay_;
  DurationSeconds duration_;
};

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_BASELINE_PREDICTORS_H_
