#ifndef PRORP_FORECAST_SLIDING_WINDOW_PREDICTOR_H_
#define PRORP_FORECAST_SLIDING_WINDOW_PREDICTOR_H_

#include <string>

#include "forecast/predictor.h"

namespace prorp::forecast {

/// The faithful Algorithm 4 (sys.PredictNextActivity): for every sliding
/// window position the inner loop issues one MIN/MAX range query per
/// previous season against the history store — when the store is a
/// SqlHistoryStore, these are literal SQL queries over the clustered
/// B+tree, giving the paper's p/s x h x O(log m) time complexity.
///
/// Used for correctness (property-tested against FastPredictor) and for
/// the prediction-latency overhead evaluation (Figure 10(c)).
class SlidingWindowPredictor : public Predictor {
 public:
  explicit SlidingWindowPredictor(PredictionConfig config)
      : config_(config) {}

  Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore& history,
      EpochSeconds now) const override;

  std::string name() const override { return "sliding_window"; }

  const PredictionConfig& config() const { return config_; }

 private:
  PredictionConfig config_;
};

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_SLIDING_WINDOW_PREDICTOR_H_
