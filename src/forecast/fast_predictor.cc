#include "forecast/fast_predictor.h"

#include <algorithm>
#include <vector>

#include "forecast/window_selection.h"

namespace prorp::forecast {

Result<ActivityPrediction> FastPredictor::PredictNextActivity(
    const history::HistoryStore& history, EpochSeconds now) const {
  const PredictionConfig& cfg = config_;
  PRORP_RETURN_IF_ERROR(cfg.Validate());
  const int64_t num_windows = cfg.NumWindows();
  const int64_t num_seasons = cfg.NumSeasons();
  if (num_windows <= 0) return ActivityPrediction::None();

  std::vector<WindowStats> stats(
      static_cast<size_t>(std::max<int64_t>(num_windows, 0)));
  for (WindowStats& s : stats) {
    s.first_login_offset = cfg.window_size;
    s.last_login_offset = 0;
  }

  // One bulk scan per season; monotone two-pointer sweep over windows.
  for (int64_t season = 1; season <= num_seasons; ++season) {
    EpochSeconds base = now - season * cfg.seasonality;
    EpochSeconds span_end =
        base + (num_windows - 1) * cfg.window_slide + cfg.window_size;
    PRORP_ASSIGN_OR_RETURN(std::vector<EpochSeconds> logins,
                           history.CollectLogins(base, span_end));
    size_t lo = 0;  // first login >= window start
    size_t hi = 0;  // first login >= window end
    for (int64_t i = 0; i < num_windows; ++i) {
      EpochSeconds win_start = base + i * cfg.window_slide;
      EpochSeconds win_end = win_start + cfg.window_size;
      while (lo < logins.size() && logins[lo] < win_start) ++lo;
      if (hi < lo) hi = lo;
      // Window ranges are half-open [win_start, win_end), matching the
      // stores' LoginMinMax bounds.
      while (hi < logins.size() && logins[hi] < win_end) ++hi;
      if (lo < hi) {
        WindowStats& s = stats[static_cast<size_t>(i)];
        ++s.seasons_with_activity;
        s.first_login_offset =
            std::min(s.first_login_offset, logins[lo] - win_start);
        s.last_login_offset =
            std::max(s.last_login_offset, logins[hi - 1] - win_start);
      }
    }
  }

  return SelectPrediction(
      cfg, now, [&](EpochSeconds win_start) -> Result<WindowStats> {
        int64_t i = (win_start - now) / cfg.window_slide;
        return stats[static_cast<size_t>(i)];
      });
}

}  // namespace prorp::forecast
