#ifndef PRORP_FORECAST_PREDICTION_H_
#define PRORP_FORECAST_PREDICTION_H_

#include <string>

#include "common/time_util.h"

namespace prorp::forecast {

/// Output of Algorithm 4 (sys.PredictNextActivity): the absolute start and
/// end of the next predicted customer activity.  The paper encodes "no
/// activity predicted" as start = 0 (Algorithm 1 checks
/// `nextActivity.start = 0`), which we preserve.
struct ActivityPrediction {
  EpochSeconds start = 0;
  EpochSeconds end = 0;
  /// Probability of the selected window (for diagnostics/training).
  double confidence = 0.0;

  bool HasPrediction() const { return start != 0; }

  static ActivityPrediction None() { return ActivityPrediction{}; }

  friend bool operator==(const ActivityPrediction&,
                         const ActivityPrediction&) = default;

  std::string ToString() const;
};

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_PREDICTION_H_
