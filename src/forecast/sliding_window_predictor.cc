#include "forecast/sliding_window_predictor.h"

#include <algorithm>

#include "forecast/window_selection.h"

namespace prorp::forecast {

Result<ActivityPrediction> SlidingWindowPredictor::PredictNextActivity(
    const history::HistoryStore& history, EpochSeconds now) const {
  const PredictionConfig& cfg = config_;
  return SelectPrediction(
      cfg, now,
      [&](EpochSeconds win_start) -> Result<WindowStats> {
        WindowStats stats;
        stats.first_login_offset = cfg.window_size;  // line 11
        stats.last_login_offset = 0;                 // line 12
        // Inner loop, lines 15-35: the same window on each previous
        // season.
        const int64_t num_seasons = cfg.NumSeasons();
        for (int64_t season = 1; season <= num_seasons; ++season) {
          EpochSeconds prev_start = win_start - season * cfg.seasonality;
          EpochSeconds prev_end = prev_start + cfg.window_size;
          // Half-open [prev_start, prev_end): a login exactly at the
          // boundary counts toward the next window only.
          PRORP_ASSIGN_OR_RETURN(
              history::LoginRangeAgg agg,
              history.LoginMinMax(prev_start, prev_end));
          if (!agg.any) continue;  // line 25
          stats.first_login_offset =
              std::min(stats.first_login_offset,
                       agg.first_login - prev_start);  // lines 26-29
          stats.last_login_offset =
              std::max(stats.last_login_offset,
                       agg.last_login - prev_start);  // lines 30-33
          ++stats.seasons_with_activity;              // line 34
        }
        return stats;
      });
}

}  // namespace prorp::forecast
