#ifndef PRORP_FORECAST_WINDOW_SELECTION_H_
#define PRORP_FORECAST_WINDOW_SELECTION_H_

#include <functional>

#include "common/config.h"
#include "common/result.h"
#include "forecast/prediction.h"

namespace prorp::forecast {

/// Per-window statistics accumulated over the previous seasons (Algorithm
/// 4's inner loop): how many seasons had a login inside the window, and
/// the extreme login offsets relative to the window start.
struct WindowStats {
  int64_t seasons_with_activity = 0;
  /// Earliest first-login offset within the window across seasons
  /// (@firstLoginPerWin; initialized to w per Algorithm 4 line 11).
  DurationSeconds first_login_offset = 0;
  /// Latest last-login offset (@lastLoginPerWin).
  DurationSeconds last_login_offset = 0;
};

/// The outer loop and candidate selection of Algorithm 4 (lines 9, 36-47),
/// shared by the faithful and the vectorized predictor: slides the window
/// across [now, now + p], computes the activity probability per window via
/// `stats_fn`, and returns the earliest-start window whose confidence
/// clears the threshold and is locally maximal.
///
/// When config.literal_break is set, reproduces the printed pseudo-code's
/// ELSE BREAK, which aborts the scan at the first sub-threshold window
/// (see DESIGN.md section 3 for why that is treated as a transcription
/// artifact).
Result<ActivityPrediction> SelectPrediction(
    const PredictionConfig& config, EpochSeconds now,
    const std::function<Result<WindowStats>(EpochSeconds win_start)>&
        stats_fn);

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_WINDOW_SELECTION_H_
