#include "forecast/window_selection.h"

#include <cstdio>

namespace prorp::forecast {

std::string ActivityPrediction::ToString() const {
  if (!HasPrediction()) return "no activity predicted";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%s .. %s] conf=%.2f",
                FormatTimestamp(start).c_str(),
                FormatTimestamp(end).c_str(), confidence);
  return buf;
}

Result<ActivityPrediction> SelectPrediction(
    const PredictionConfig& config, EpochSeconds now,
    const std::function<Result<WindowStats>(EpochSeconds win_start)>&
        stats_fn) {
  PRORP_RETURN_IF_ERROR(config.Validate());
  const int64_t num_seasons = config.NumSeasons();
  const EpochSeconds pred_end = now + config.prediction_horizon;

  ActivityPrediction result;
  double prev_prob = 0.0;
  // Outer loop, Algorithm 4 line 9.
  for (EpochSeconds win_start = now;
       win_start + config.window_size <= pred_end;
       win_start += config.window_slide) {
    PRORP_ASSIGN_OR_RETURN(WindowStats stats, stats_fn(win_start));
    double prob = static_cast<double>(stats.seasons_with_activity) /
                  static_cast<double>(num_seasons);
    // Selection, lines 37-46: take the window if it clears the confidence
    // threshold and its probability still improves on the previous
    // candidate.  (seasons_with_activity > 0 guards the degenerate c = 0
    // case, where the printed code would emit an empty window.)
    if (config.confidence_threshold <= prob &&
        stats.seasons_with_activity > 0 &&
        (prev_prob < prob || prev_prob == 0.0)) {
      result.start = win_start + stats.first_login_offset;
      result.end = win_start + stats.last_login_offset;
      result.confidence = prob;
      prev_prob = prob;
      continue;
    }
    if (config.literal_break) {
      // The printed ELSE BREAK: abort at the first non-qualifying window.
      break;
    }
    if (prev_prob > 0.0) {
      // Corrected reading: a candidate exists and confidence stopped
      // increasing — the earliest-start locally-maximal window is final.
      break;
    }
    // No candidate yet: keep sliding past sub-threshold windows.
  }
  return result;
}

}  // namespace prorp::forecast
