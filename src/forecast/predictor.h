#ifndef PRORP_FORECAST_PREDICTOR_H_
#define PRORP_FORECAST_PREDICTOR_H_

#include <string>

#include "common/config.h"
#include "common/result.h"
#include "forecast/prediction.h"
#include "history/history_store.h"

namespace prorp::forecast {

/// Next-activity prediction contract.  Implementations are pure functions
/// of (history, now, config): no hidden state, so a prediction can be
/// recomputed offline for training (Section 8).
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Predicts the start/end of the next customer activity within
  /// [now, now + p].  Returns ActivityPrediction::None() when no window
  /// clears the confidence threshold.  A non-OK Status means the component
  /// is unavailable, in which case the policy must default to reactive
  /// behaviour (design principle "Default to Reactive", Section 3.2).
  virtual Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore& history, EpochSeconds now) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_PREDICTOR_H_
