#ifndef PRORP_FORECAST_FAST_PREDICTOR_H_
#define PRORP_FORECAST_FAST_PREDICTOR_H_

#include <string>

#include "forecast/predictor.h"

namespace prorp::forecast {

/// Vectorized Algorithm 4: algebraically identical to
/// SlidingWindowPredictor but restructured for fleet-scale simulation.
/// Instead of one range query per (window, season) pair — p/s x h queries
/// per prediction — it performs one bulk login scan per season and sweeps
/// all window positions with two monotone pointers:
///
///   O(h/season x (logins_per_season + p/s))
///
/// versus the faithful p/s x h/season x O(log m).  Property tests assert
/// both produce bit-identical predictions on random histories; the
/// ablation bench quantifies the speedup.
class FastPredictor : public Predictor {
 public:
  explicit FastPredictor(PredictionConfig config) : config_(config) {}

  Result<ActivityPrediction> PredictNextActivity(
      const history::HistoryStore& history,
      EpochSeconds now) const override;

  std::string name() const override { return "fast_sliding_window"; }

  const PredictionConfig& config() const { return config_; }

 private:
  PredictionConfig config_;
};

}  // namespace prorp::forecast

#endif  // PRORP_FORECAST_FAST_PREDICTOR_H_
