#ifndef PRORP_SIM_FLEET_SIMULATOR_H_
#define PRORP_SIM_FLEET_SIMULATOR_H_

#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "common/stats.h"
#include "controlplane/management_service.h"
#include "policy/lifecycle_controller.h"
#include "telemetry/fault_stats.h"
#include "telemetry/histogram.h"
#include "telemetry/kpi.h"
#include "workload/trace.h"
#include "workload/trace_source.h"

namespace prorp::sim {

/// Configuration of one region-scale simulation run.
struct SimOptions {
  ProrpConfig config;
  policy::PolicyMode mode = policy::PolicyMode::kProactive;

  /// KPI measurement window [measure_from, end).  Everything before
  /// measure_from is warm-up (history accumulation); 0 = measure from the
  /// beginning of the traces.
  EpochSeconds measure_from = 0;
  /// Simulation end (required; must be after all warm-up).
  EpochSeconds end = 0;

  /// Reaction time between a demand signal against a physically paused
  /// database and resources becoming available (the reactive-resume delay
  /// of Section 2.2).  With the storm layer enabled this becomes the BASE
  /// service time of the per-node queueing model: actual latency is base
  /// plus congestion wait (slots, tokens, outages).
  DurationSeconds resume_latency = 60;

  // --- Resume-storm layer (DESIGN.md section 8) ---
  /// Finite per-node resume concurrency; > 0 enables the storm layer:
  /// resumes run through a NodeCapacityModel (slots + token bucket),
  /// reactive logins route through the management service's multi-class
  /// queue, and resume latency inflates under load.  0 keeps the legacy
  /// scalar resume_latency model.  The storm layer couples the fleet
  /// through shared node capacity, so it always runs the serial event
  /// loop (num_threads is ignored).
  int resume_concurrency_per_node = 0;
  /// Token-bucket admission limiter per node: resume starts per second
  /// (0 = unlimited) and burst allowance.
  double node_admission_rate = 0;
  double node_admission_burst = 4;
  /// Deterministic jitter bound on contended resume grants.
  DurationSeconds resume_queue_jitter_max = 5;
  /// One fleet-wide correlated outage window [at, at + duration): every
  /// node is down — the storm scenario's trigger.  duration <= 0
  /// disables.  Composes with the per-node random outages below.
  EpochSeconds fleet_outage_at = 0;
  DurationSeconds fleet_outage_duration = 0;
  /// Periodic maintenance-resume load (storm layer + proactive mode):
  /// every interval, up to `batch` physically paused databases are
  /// enqueued as lowest-class maintenance touches.  0 disables.
  DurationSeconds maintenance_interval = 0;
  size_t maintenance_batch = 0;

  bool storm_layer_enabled() const { return resume_concurrency_per_node > 0; }

  /// Per-hour hazard of a logically paused database being reclaimed early
  /// by node capacity pressure (0 disables).
  double eviction_per_hour = 0;

  /// Injected probability that one proactive-resume workflow attempt
  /// fails transiently (exercises the diagnostics/mitigation runner).
  double resume_failure_probability = 0;

  /// Fleet-level correlated outages.  The fleet is spread across
  /// `num_nodes` nodes (node = fleet-global db id % num_nodes); each node
  /// independently suffers outage windows of length `outage_duration`
  /// with exponential gaps averaging one outage per
  /// 1/outage_rate_per_day days.  While a node is down, every
  /// proactive-resume workflow targeting one of its databases fails
  /// (feeding the backoff/breaker machinery); customer logins still
  /// reactively resume — the reactive path rides on the customer's
  /// connection retry loop, which an outage delays but does not break.
  /// The schedule is derived from `seed` and the node index alone, so a
  /// sharded run computes the identical schedule in every shard.
  /// num_nodes <= 0 or outage_rate_per_day <= 0 disables outages.
  int num_nodes = 0;
  double outage_rate_per_day = 0;
  DurationSeconds outage_duration = Minutes(10);

  /// Number of databases — the lowest fleet-global ids — whose history
  /// runs on the real SQL-backed store (checksummed pages, WAL, snapshots)
  /// instead of the in-memory one.  Assignment is by fleet-global id, so a
  /// sharded run picks the same databases as a serial run.  0 = all
  /// in-memory (the fast default).
  uint64_t sql_history_count = 0;

  /// Period of the background integrity scrubber over the SQL-backed
  /// history stores (0 disables).  Each tick checksum-verifies every page
  /// and walks the B+tree invariants; a dirty store self-heals from
  /// snapshot + WAL or is quarantined.  Counters land in the robustness
  /// report.
  DurationSeconds scrub_interval = 0;

  /// Disables the control plane's proactive resume operation (ablation:
  /// proactive pause without proactive resume).
  bool proactive_resume_enabled = true;

  /// Route Algorithm 5's selection through the literal SQL scan instead
  /// of the ordered index (slow; for validation runs).
  bool use_sql_scan_for_resume_op = false;

  // --- Durable control plane (DESIGN.md section 10) ---
  /// Non-empty: the metadata store and management service run behind the
  /// DurableControlPlane — every externally visible control-plane
  /// transition is journaled to `<dir>/journal.wal` (buffered sync; the
  /// simulated fsync boundary is the crash event below) and periodically
  /// folded into `<dir>/checkpoint.bin`.  Empty (default) keeps the
  /// legacy in-memory control plane.  The journal couples the fleet, so
  /// this always runs the serial event loop.
  std::string control_plane_journal_dir;
  /// Journal records between automatic checkpoints (durable mode only).
  uint64_t control_plane_checkpoint_every = 4096;
  /// Simulated control-plane process death at this instant: the plane is
  /// destroyed mid-run and recovered from journal + checkpoint, then the
  /// simulation continues under the new incarnation.  0 = never; requires
  /// control_plane_journal_dir.
  EpochSeconds control_plane_crash_at = 0;

  /// Route every control-plane resume dispatch through the typed message
  /// transport (net::TransportDispatcher -> InProcessTransport -> a
  /// NodeAgent wrapping the node-side executor) instead of a direct call.
  /// Fault-free: acks arrive inline, so the run is bit-identical to the
  /// direct-call run — the regression test for that identity is what this
  /// flag exists for.  The transport couples the fleet through one
  /// dispatcher, so this always runs the serial event loop.
  bool use_transport = false;

  // --- Failure detection + fenced failover (DESIGN.md section 12) ---
  /// Enables the lease-driven node health subsystem on top of the message
  /// transport (requires use_transport): the dispatcher runs a lease loop
  /// against one NodeAgent per node, a NodeHealthTracker scores grant
  /// silence and reply latency, and a FailoverEngine re-places a declared
  /// dead node's databases as reactive-priority work.  Fault-free this is
  /// pure observation — the run's workload output is identical to a plain
  /// use_transport run.
  bool failure_detection_enabled = false;
  DurationSeconds lease_interval = 60;
  DurationSeconds lease_ttl = 240;
  DurationSeconds suspect_after = 150;
  DurationSeconds dead_grace = 120;
  DurationSeconds rejoin_after = 600;

  /// One injected node-crash window [node_crash_at, node_crash_at +
  /// node_crash_duration): the node's agent drops every message, and the
  /// idle (logically paused) databases it hosted are force-evicted — the
  /// node died, their warm resources died with it.  With detection
  /// enabled the tracker declares the node dead and the failover engine
  /// re-places those databases on survivors; without it (the passive
  /// baseline) they stay paused until their next login rides the
  /// retransmit/timeout machinery.  Requires use_transport and
  /// num_nodes > 0; node_crash_node < 0 disables.
  int node_crash_node = -1;
  EpochSeconds node_crash_at = 0;
  DurationSeconds node_crash_duration = 0;

  // --- Scale layer (DESIGN.md section 13) ---
  /// Event-queue backend.  false (default): the hierarchical timer wheel
  /// (O(1) push, next-tick jump, post-storm slot shrink).  true: the
  /// legacy global binary heap, kept as the differential-testing oracle —
  /// bit-identical output, just slower and cache-colder at scale.
  bool use_legacy_event_heap = false;

  /// Telemetry detail.  kFull buffers every fleet event in the report's
  /// Recorder (O(events) memory — what the figure benches and CSV export
  /// consume).  kStreaming keeps only the running counters and log2
  /// histograms: O(fleet) memory however long the run; report.recorder
  /// stays empty and the per-event Summaries (login_delay,
  /// history_tuples/bytes) are replaced by their histogram forms.
  enum class Telemetry : uint8_t { kFull, kStreaming };
  Telemetry telemetry = Telemetry::kFull;

  /// Share one write-discarding history store across the fleet instead of
  /// one in-memory store per database.  Valid for reactive and always-on
  /// policies, whose controllers write history but never read it back;
  /// proactive mode (which predicts from history) rejects this flag.
  /// Databases covered by sql_history_count keep their SQL-backed store.
  bool use_null_history = false;

  /// Open the metadata store without its sys.databases SQL mirror
  /// (MetadataStore::Backing::kIndexOnly).  Every selection the policies
  /// use is answered from the in-memory entry map / resume index, so the
  /// run stays bit-identical; only the literal-SQL validation path
  /// (use_sql_scan_for_resume_op) is unavailable, and the two are
  /// rejected together.  At million-database scale the per-transition
  /// SQL upsert otherwise dominates the hot loop.
  bool use_lite_metadata = false;

  uint64_t seed = 42;

  /// Workers for the sharded fleet mode.  Reactive and always-on
  /// databases share no ManagementService/MetadataStore state, so the
  /// fleet is partitioned into contiguous shards simulated concurrently
  /// and the per-shard reports merged; per-database RNG streams make the
  /// result bit-identical to the serial run.  Proactive mode couples the
  /// fleet through the metadata store and always runs serially,
  /// whatever this is set to.  <= 1 disables sharding.
  int num_threads = 1;
};

/// Everything a bench needs from one run.
struct SimReport {
  telemetry::KpiReport kpi;
  /// Running per-kind event counters over the measurement window.  Always
  /// populated (both telemetry modes); the KPI report is computed from
  /// these, so streaming runs lose no KPI fidelity.
  telemetry::EventCounts counts;
  /// Events within the measurement window.  Empty under
  /// Telemetry::kStreaming.
  telemetry::Recorder recorder;
  /// Fleet-total seconds per phase over the measurement window.  Kept in
  /// raw form (not just the KPI percentages) so per-shard reports can be
  /// summed exactly when merging.
  telemetry::TimeBreakdown usage;
  controlplane::DiagnosticsReport diagnostics;
  /// Fault-injection and graceful-degradation counters.
  telemetry::RobustnessReport robustness;
  /// Workflows still queued with >= 1 failed attempt when the run ended —
  /// the open term of the accounting invariant
  ///   stuck_workflows == mitigated + incidents + failed_then_skipped
  ///                      + pending_failed.
  uint64_t pending_failed = 0;
  /// Databases proactively resumed per operation iteration (Figure 11).
  Summary resumed_per_iteration;
  /// Reactive login-to-resources delay samples inside the measurement
  /// window (storm layer only; empty otherwise — the legacy model's delay
  /// is the constant resume_latency).
  Summary login_delay;
  /// Congestion waits of every capacity grant (storm layer only).
  Summary resume_waits;
  /// Per-database history sizes at simulation end (Figure 10(a)/(b)).
  Summary history_tuples;
  Summary history_bytes;
  /// Number of databases with resources allocated, sampled every 5
  /// simulated minutes inside the measurement window.  Peak concurrent
  /// allocation determines how many physical machines the region needs
  /// (paper Section 11, future work 3: aligning the pause policy with
  /// tenant placement).
  Summary allocated_samples;
  /// Durable-control-plane mode: completed mid-run recoveries and the
  /// journal records replayed by the last one (0 in legacy mode).
  uint64_t control_plane_recoveries = 0;
  uint64_t control_plane_replayed = 0;
  EpochSeconds measure_from = 0;
  EpochSeconds measure_end = 0;

  // --- Scale-layer telemetry ---
  /// Simulation events executed by the event loop (all phases, warm-up
  /// included) — the numerator of the bench_fleet_scale throughput gate.
  uint64_t events_processed = 0;
  /// Log2-bucket forms of login_delay and history_tuples/bytes,
  /// populated in both telemetry modes (the only tail-latency view a
  /// streaming run has; O(1) memory, bucket-wise exact shard merge).
  telemetry::Histogram login_delay_hist;
  telemetry::Histogram history_tuples_hist;
  telemetry::Histogram history_bytes_hist;
  /// Bytes held by the event queue's slot/heap storage at run end (summed
  /// over shards) — the post-storm shrink regression metric.
  uint64_t event_queue_bytes = 0;
};

/// Runs the full ProRP stack over the fleet: one history store and
/// lifecycle controller per database, the metadata store, the management
/// service's periodic proactive resume operation, capacity-pressure
/// evictions, and reactive-resume latency — all on a single-threaded
/// discrete event loop (per shard).  Sessions are pulled from the source
/// database-by-database, so a streaming source runs a million-database
/// fleet without materializing any trace.
Result<SimReport> RunFleetSimulation(const workload::TraceSource& source,
                                     const SimOptions& options);

/// Convenience overload over a materialized fleet.
Result<SimReport> RunFleetSimulation(
    const std::vector<workload::DbTrace>& traces, const SimOptions& options);

}  // namespace prorp::sim

#endif  // PRORP_SIM_FLEET_SIMULATOR_H_
