#ifndef PRORP_SIM_FAILOVER_TORTURE_H_
#define PRORP_SIM_FAILOVER_TORTURE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "net/transport.h"

namespace prorp::sim {

/// One injected node fault, active over [at_step, at_step + duration).
struct NodeFaultSpec {
  enum class Kind : uint8_t {
    kCrash,   ///< process death: deaf to messages, side effects destroyed
    kZombie,  ///< asymmetric partition: keeps receiving and executing,
              ///< every message it sends is lost one-way
    kSlow,    ///< gray failure: alive and correct, replies delayed
  };
  Kind kind = Kind::kCrash;
  uint32_t node = 1;  ///< node endpoint id (1-based)
  int at_step = 40;
  int duration_steps = 20;
  /// kSlow only: fixed delay applied to everything the node sends.
  DurationSeconds slow_delay = 120;
};

/// One failover-torture run: the network-torture workload (proactive
/// selections, reactive logins, pause churn, message faults, optional
/// storm/outage/plane-crash overlays) with node-level failures layered on
/// top — crashes, zombie partitions, gray-slow nodes — and the
/// lease-driven failure detector plus the fenced failover engine wired in
/// to detect them and re-place the affected databases.
///
/// Invariants the result exposes (the matrix test asserts them):
///  * zero accepted-login loss (every acked login's database is resumed
///    after the final drain),
///  * zero double-applies and zero stale-epoch applies,
///  * zero double-live (a database never has side effects live on two
///    nodes at once — the fence held),
///  * zero fence violations (no node executed work past its lease),
///  * per-class accounting reconciles after the drain.
struct FailoverTortureOptions {
  std::string dir;  // working directory for journal + checkpoint
  uint64_t seed = 1;
  int num_dbs = 48;
  int num_nodes = 4;
  int steps = 200;  // virtual-clock steps of one minute each
  /// False = passive baseline: leases stay telemetry-only (ttl 0), no
  /// tracker, no failover engine, no diversion — recovery from a node
  /// fault happens only through retry/timeout attrition.
  bool detection_enabled = true;
  DurationSeconds lease_interval = 60;
  DurationSeconds lease_ttl = 240;
  DurationSeconds suspect_after = 150;
  DurationSeconds dead_grace = 120;
  DurationSeconds rejoin_after = 600;
  DurationSeconds slow_p99_threshold = 60;
  int min_latency_samples = 8;
  std::vector<NodeFaultSpec> faults;
  bool storm = false;      // login-spike storm mid-run
  bool outage = false;     // resume-path outage window mid-run
  int crash_at_step = -1;  // control-plane crash/recovery overlay
  // Message-fault probabilities (transport-only RNG stream).
  double drop_p = 0.0;
  double duplicate_p = 0.0;
  double delay_p = 0.0;
  /// Probability a node execution fails transiently.
  double fail_probability = 0.05;
  uint64_t checkpoint_every = 64;
};

struct FailoverTortureResult {
  int recoveries = 0;  ///< control-plane crash/recovery cycles
  uint64_t accepted_reactive = 0;
  /// Acked logins whose database was still not resumed after the final
  /// drain — must be zero.
  uint64_t lost_reactive = 0;
  /// A request id side-effecting twice — must be zero.
  uint64_t double_applies = 0;
  /// A request below the node's epoch fence executed — must be zero.
  uint64_t stale_epoch_applied = 0;
  /// A database executed a resume while its side effects were still live
  /// on another node — must be zero (the lease fence failed).
  uint64_t double_live = 0;
  /// A node executed work while its own lease was lapsed — must be zero
  /// (the self-quiesce fence failed).
  uint64_t fence_violations = 0;
  // Detection / failover telemetry.
  uint64_t deaths_declared = 0;
  uint64_t failover_requeues = 0;
  uint64_t failover_deduped = 0;
  uint64_t diverted_dispatches = 0;  ///< routed off a dead home node
  uint64_t self_quiesces = 0;
  uint64_t lease_expired_rejected = 0;
  uint64_t lease_probes = 0;
  uint64_t node_rejoins = 0;
  uint64_t suspects_gray_failure = 0;
  // Workload telemetry.
  uint64_t incidents = 0;
  uint64_t dispatch_timeouts = 0;
  uint64_t retransmissions = 0;
  uint64_t total_resumed = 0;
  bool accounting_ok = false;
  bool drained = false;
  /// Fault onset -> death declaration, seconds, one sample per death.
  Summary detection_delay;
  /// Failover re-queue -> successful re-execution on a survivor.
  Summary replacement_delay;
  /// Login arrival -> database resumed, for logins that had to wait.
  Summary login_wait;
  net::TransportStats transport;
};

Result<FailoverTortureResult> RunFailoverTorture(
    const FailoverTortureOptions& options);

}  // namespace prorp::sim

#endif  // PRORP_SIM_FAILOVER_TORTURE_H_
