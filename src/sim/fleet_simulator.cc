#include "sim/fleet_simulator.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "common/arena.h"
#include "common/backoff.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "controlplane/durable_control_plane.h"
#include "controlplane/failover.h"
#include "controlplane/node_health.h"
#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"
#include "history/null_history_store.h"
#include "history/sql_history_store.h"
#include "net/dispatcher.h"
#include "net/node_agent.h"
#include "net/transport.h"
#include "sim/resume_capacity.h"
#include "sim/timer_wheel.h"
#include "telemetry/usage_ledger.h"

namespace prorp::sim {
namespace {

using controlplane::MetadataStore;
using history::MemHistoryStore;
using policy::DbState;
using policy::LifecycleController;
using policy::PolicyMode;
using policy::TransitionCause;
using telemetry::DbId;
using telemetry::EventKind;
using telemetry::Phase;

enum class SimEventType : uint8_t {
  kDbCreated,        // first session begins; controller constructed
  kAllocationSample,  // periodic concurrent-allocation census
  kSessionEnd,       // customer workload completes
  kSessionStart,     // subsequent customer login
  kTimer,            // lifecycle controller wait-condition re-check
  kResumeOpTick,     // periodic proactive resume operation
  kScrubTick,        // periodic integrity scrub of SQL-backed histories
  kEviction,         // capacity-pressure reclamation attempt
  kResumeLatencyDone,  // reactive resume finished; resources usable
  kMeasureStart,     // KPI window begins: swap ledger/recorder
  kPumpTick,         // storm layer: periodic reactive drain + watchdog
  kMaintenanceTick,  // storm layer: enqueue background maintenance load
  kControlPlaneCrash,  // durable mode: simulated control-plane death
  kLeaseTick,        // transport: lease renewals, retransmits, failover
  kNodeCrash,        // injected node death: agent deaf, resources lost
  kNodeRestart,      // the crashed node's process returns
  kFailoverPlaced,   // a failover re-placement finished on a survivor
};

/// Deterministic per-node outage windows over [0, end).  Derived from the
/// run seed and the node index alone: every shard of a sharded run
/// rebuilds the identical schedule, which is what keeps sharded output
/// bit-identical to serial.
class OutageSchedule {
 public:
  static OutageSchedule Build(const SimOptions& options) {
    OutageSchedule schedule;
    bool random_on = options.num_nodes > 0 &&
                     options.outage_rate_per_day > 0 &&
                     options.outage_duration > 0;
    bool fleet_on = options.fleet_outage_duration > 0 &&
                    options.fleet_outage_at < options.end;
    if (!random_on && !fleet_on) return schedule;
    size_t num_nodes =
        options.num_nodes > 0 ? static_cast<size_t>(options.num_nodes) : 1;
    schedule.nodes_.resize(num_nodes);
    if (random_on) {
      double mean_gap = static_cast<double>(kSecondsPerDay) /
                        options.outage_rate_per_day;
      for (size_t node = 0; node < schedule.nodes_.size(); ++node) {
        Rng rng(options.seed ^
                (0xA24BAED4963EE407ULL * (static_cast<uint64_t>(node) + 1)));
        EpochSeconds t = 0;
        for (;;) {
          t += static_cast<DurationSeconds>(rng.NextExponential(mean_gap));
          if (t >= options.end) break;
          EpochSeconds down_until =
              std::min(t + options.outage_duration, options.end);
          schedule.nodes_[node].push_back({t, down_until});
          t = down_until;
        }
      }
    }
    if (fleet_on) {
      // The fleet-wide correlated window hits every node; overlapping
      // windows are merged below so DownAt's prev-window invariant holds.
      EpochSeconds at = std::max<EpochSeconds>(0, options.fleet_outage_at);
      EpochSeconds until =
          std::min(at + options.fleet_outage_duration, options.end);
      for (auto& wins : schedule.nodes_) wins.push_back({at, until});
    }
    for (auto& wins : schedule.nodes_) {
      std::sort(wins.begin(), wins.end());
      std::vector<std::pair<EpochSeconds, EpochSeconds>> merged;
      for (const auto& w : wins) {
        if (!merged.empty() && w.first <= merged.back().second) {
          merged.back().second = std::max(merged.back().second, w.second);
        } else {
          merged.push_back(w);
        }
      }
      wins = std::move(merged);
      for (const auto& w : wins) {
        ++schedule.windows_;
        schedule.seconds_ += static_cast<uint64_t>(w.second - w.first);
      }
    }
    return schedule;
  }

  bool enabled() const { return !nodes_.empty(); }
  uint64_t windows() const { return windows_; }
  uint64_t seconds() const { return seconds_; }

  bool DownAt(size_t node, EpochSeconds t) const {
    return DownUntil(node, t) != 0;
  }

  /// End of the outage window covering t on the node, or 0 when the node
  /// is up at t.
  EpochSeconds DownUntil(size_t node, EpochSeconds t) const {
    const auto& wins = nodes_[node % nodes_.size()];
    // First window starting after t; the one before it is the only
    // candidate containing t (windows are merged, hence disjoint).
    auto it = std::upper_bound(
        wins.begin(), wins.end(), t,
        [](EpochSeconds v, const std::pair<EpochSeconds, EpochSeconds>& w) {
          return v < w.first;
        });
    if (it != wins.begin() && t < std::prev(it)->second) {
      return std::prev(it)->second;
    }
    return 0;
  }

 private:
  std::vector<std::vector<std::pair<EpochSeconds, EpochSeconds>>> nodes_;
  uint64_t windows_ = 0;
  uint64_t seconds_ = 0;
};

struct SimEvent {
  EpochSeconds time;
  uint64_t seq;  // FIFO tiebreaker for simultaneous events
  SimEventType type;
  DbId db;
  uint64_t aux;  // session index or generation stamp

  bool operator>(const SimEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

/// The simulator's event queue behind a backend switch: the hierarchical
/// timer wheel by default, or the legacy global binary heap as a
/// differential-testing oracle (SimOptions::use_legacy_event_heap).  Both
/// backends expose the same tick-at-a-time drain, and both deliver the
/// strict (time, seq) order of the original std::priority_queue loop, so
/// the surrounding simulation code cannot tell them apart.
class EventQueue {
 public:
  explicit EventQueue(bool legacy) : legacy_(legacy) {}

  void Push(const SimEvent& e) {
    if (legacy_) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), Greater{});
    } else {
      wheel_.Push(e);
    }
  }

  /// Appends every event of the earliest pending tick to `*out`
  /// (ascending seq); false when empty.
  bool PopNextTick(std::vector<SimEvent>* out) {
    if (!legacy_) return wheel_.PopNextTick(out);
    if (heap_.empty()) return false;
    EpochSeconds t = heap_.front().time;
    while (!heap_.empty() && heap_.front().time == t) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater{});
      out->push_back(heap_.back());
      heap_.pop_back();
    }
    // Post-storm shrink: a login storm can balloon the heap by orders of
    // magnitude; once the backlog drains, give the capacity back instead
    // of holding the high-water mark for the rest of the run.
    if (heap_.capacity() > kHeapShrinkCapacity &&
        heap_.size() < heap_.capacity() / 4) {
      heap_.shrink_to_fit();
    }
    return true;
  }

  size_t MemoryBytes() const {
    return legacy_ ? heap_.capacity() * sizeof(SimEvent)
                   : wheel_.MemoryBytes();
  }

 private:
  struct Greater {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return a > b;
    }
  };

  static constexpr size_t kHeapShrinkCapacity = 4096;

  bool legacy_;
  std::vector<SimEvent> heap_;
  TimerWheel<SimEvent> wheel_;
};

/// One discrete-event simulation over a contiguous slice of the fleet.
/// `db_offset` is the fleet-global id of the slice's first database; all
/// externally visible ids (telemetry events, RNG seeding) are global, so
/// a sharded run merges into the same report a whole-fleet run produces.
///
/// Per-database runtime state lives in parallel arrays (struct-of-arrays)
/// instead of one heap-allocated runtime object per database: the event
/// loop's per-tick working set touches only the few fields the handler
/// needs, and the controllers and history stores are arena-packed so
/// same-kind objects stay contiguous.
class FleetSimulation {
 public:
  FleetSimulation(const workload::TraceSource& source, size_t num_dbs,
                  const SimOptions& options, DbId db_offset)
      : source_(&source),
        num_dbs_(num_dbs),
        options_(options),
        db_offset_(db_offset),
        rng_(options.seed),
        queue_(options.use_legacy_event_heap) {}

  Result<SimReport> Run();

 private:
  void Push(EpochSeconds time, SimEventType type, DbId db, uint64_t aux) {
    SimEvent e{time, seq_++, type, db, aux};
    // A handler pushing into the tick being processed (an inline resume
    // completing "now") appends to the tick buffer: its seq is larger
    // than every event already buffered, which is exactly where the
    // legacy priority queue would have popped it.
    if (time <= tick_time_) {
      tick_.push_back(e);
    } else {
      queue_.Push(e);
    }
  }

  /// Re-schedules the controller's requested timer if it changed.  A
  /// cancelled timer (NextTimerAt() == 0, e.g. on physical pause) clears
  /// the bookkeeping so the already-queued event is recognized as stale:
  /// otherwise a later legitimate timer at the same timestamp would be
  /// silently consumed by HandleTimer's staleness check.
  void SyncTimer(DbId db) {
    EpochSeconds t = controllers_[db]->NextTimerAt();
    if (t == 0) {
      scheduled_timer_[db] = 0;
      return;
    }
    if (t != scheduled_timer_[db] ||
        scheduled_timer_gen_[db] != generation_[db]) {
      scheduled_timer_[db] = t;
      scheduled_timer_gen_[db] = generation_[db];
      Push(t, SimEventType::kTimer, db, generation_[db]);
    }
  }

  void RecordEvent(EpochSeconds time, DbId db, EventKind kind) {
    counts_.Add(kind);
    if (recorder_ != nullptr) recorder_->Record(time, db_offset_ + db, kind);
  }

  void SetPhase(DbId db, Phase phase, EpochSeconds time) {
    bool was_allocated = current_phase_[db] != Phase::kReclaimed &&
                         phase_known_[db];
    bool is_allocated = phase != Phase::kReclaimed;
    if (is_allocated && !was_allocated) ++allocated_now_;
    if (!is_allocated && was_allocated) --allocated_now_;
    phase_known_[db] = 1;
    ledger_->SetPhase(db, phase, time);
    current_phase_[db] = phase;
  }

  /// Lifecycle transition hook: metadata store, telemetry, ledger phases,
  /// eviction scheduling, reactive-resume latency.
  void OnTransition(DbId db, const policy::TransitionEvent& e);

  /// Home node of a database (fleet-global id modulo the node count).
  size_t NodeOf(DbId db) const {
    return static_cast<size_t>(db_offset_ + db) %
           static_cast<size_t>(std::max(1, options_.num_nodes));
  }

  Status HandleDbCreated(const SimEvent& ev);
  Status HandleSessionStart(const SimEvent& ev);
  Status HandleSessionEnd(const SimEvent& ev);
  Status HandleTimer(const SimEvent& ev);
  Status HandleResumeOpTick(const SimEvent& ev);
  Status HandleScrubTick(const SimEvent& ev);
  Status HandleEviction(const SimEvent& ev);
  Status HandleResumeLatencyDone(const SimEvent& ev);
  void HandleMeasureStart(const SimEvent& ev);
  Status HandlePumpTick(const SimEvent& ev);
  Status HandleMaintenanceTick(const SimEvent& ev);
  Status HandleControlPlaneCrash(const SimEvent& ev);
  Status HandleLeaseTick(const SimEvent& ev);
  Status HandleNodeCrash(const SimEvent& ev);
  Status HandleNodeRestart(const SimEvent& ev);

  /// True when the transport stack runs one agent per node (failure
  /// detection or an injected node crash need real per-node endpoints);
  /// plain use_transport keeps the single-agent legacy wiring.
  bool multi_node_transport() const {
    return options_.use_transport &&
           (options_.failure_detection_enabled ||
            options_.node_crash_node >= 0);
  }

  bool full_telemetry() const {
    return options_.telemetry == SimOptions::Telemetry::kFull;
  }

  /// The node-side resume executor shared by the legacy and durable
  /// control planes.  Failure draws come from the member RNG so the
  /// stream continues across a simulated control-plane restart.
  controlplane::ManagementService::ResumeCallback MakeResumeCallback();

  /// The executor body behind MakeResumeCallback and the per-node agents:
  /// `node` is the 0-based node actually running the attempt (the home
  /// node in the legacy wiring, the dispatch target under failover).
  Status ExecuteResume(const controlplane::ResumeAttempt& a,
                       EpochSeconds now, size_t node);

  /// A reactive-class attempt with no waiting login: either a failover
  /// re-placement of a crash-evicted database (re-warm it on `node`) or
  /// a genuinely stale workflow (refuse it).
  Status ExecuteFailoverPlacement(const controlplane::ResumeAttempt& a,
                                  EpochSeconds now, size_t node);

  /// The resume callback handed to the control plane: the node executor
  /// directly (legacy), or a hop through the message transport when
  /// options_.use_transport is set.
  controlplane::ManagementService::ResumeCallback MakeServiceCallback();

  /// Repoints the transport stack at the current service incarnation
  /// (after construction and after every crash/recovery).  No-op when the
  /// transport is disabled.
  void SyncTransportToService();

  /// Opens (or, after a crash, recovers) the durable control plane and
  /// repoints metadata_/management_ at its components.
  Status OpenDurableControlPlane(EpochSeconds now);

  const workload::TraceSource* source_;
  size_t num_dbs_;
  SimOptions options_;
  DbId db_offset_;
  Rng rng_;

  EventQueue queue_;
  uint64_t seq_ = 0;
  /// Events of the tick currently being processed, ascending seq;
  /// handlers may append same-tick events while it drains.
  std::vector<SimEvent> tick_;
  /// Time of the tick being processed (-1 outside the event loop, so
  /// setup-phase pushes always go to the queue).
  EpochSeconds tick_time_ = -1;
  uint64_t events_processed_ = 0;

  OutageSchedule outages_;
  telemetry::RobustnessReport robustness_;
  /// Storm layer (null when disabled): finite per-node resume capacity.
  std::unique_ptr<NodeCapacityModel> capacity_;
  /// Reactive login-to-resources delays inside the measurement window.
  Summary login_delay_;
  telemetry::Histogram login_delay_hist_;
  /// Round-robin cursor of the maintenance sweep.
  DbId maint_cursor_ = 0;

  // --- Struct-of-arrays per-database state (indexed by shard-local id).
  // Arena pools own the controllers and in-memory history stores; the
  // parallel vectors below hold raw pointers plus the hot scheduling
  // fields the event handlers actually touch.
  ArenaPool<LifecycleController> controller_pool_;
  ArenaPool<MemHistoryStore> mem_history_pool_;
  history::NullHistoryStore null_history_;
  std::vector<LifecycleController*> controllers_;  // null until created
  std::vector<history::HistoryStore*> history_;
  /// Concrete views of SQL-backed stores (scrubber + integrity rollup);
  /// allocated only when options_.sql_history_count > 0.
  std::vector<history::SqlHistoryStore*> sql_history_;
  std::vector<std::unique_ptr<history::SqlHistoryStore>> owned_sql_;
  /// Bumped on every lifecycle transition; stamps scheduled timer,
  /// eviction, and resume-latency events so stale ones are dropped.
  std::vector<uint64_t> generation_;
  std::vector<EpochSeconds> scheduled_timer_;
  std::vector<uint64_t> scheduled_timer_gen_;
  /// Capacity-pressure hazard streams, seeded from the run seed and the
  /// database's fleet-global id so the draws are identical whether the
  /// fleet runs in one piece or sharded; empty when eviction is disabled.
  std::vector<Rng> eviction_rng_;
  /// Storm layer: time of the reactive login currently waiting for
  /// resources (0 = none) and the generation it was issued under, so the
  /// first matching completion event records the login delay exactly once
  /// (a hedge produces a second, ignored, completion).  Empty when the
  /// storm layer is disabled.
  std::vector<EpochSeconds> reactive_login_at_;
  std::vector<uint64_t> reactive_login_gen_;
  /// Per-database session stream and the end of the most recently
  /// scheduled session (what the kSessionStart/kSessionEnd handlers
  /// need); a cursor is released as soon as its trace is exhausted.
  std::vector<std::unique_ptr<workload::SessionCursor>> cursors_;
  std::vector<EpochSeconds> cur_session_end_;
  std::vector<Phase> current_phase_;
  std::vector<uint8_t> phase_known_;

  int64_t allocated_now_ = 0;
  Summary allocated_samples_;
  std::unique_ptr<forecast::FastPredictor> predictor_;
  /// The control plane behind `metadata_`/`management_` is either owned
  /// directly (legacy in-memory mode) or lives inside `plane_` (durable
  /// journaled mode); all handlers go through the raw pointers so a
  /// mid-run recovery only has to swap what they point at.
  std::unique_ptr<MetadataStore> owned_metadata_;
  std::unique_ptr<controlplane::ManagementService> owned_management_;
  std::unique_ptr<controlplane::DurableControlPlane> plane_;
  MetadataStore* metadata_ = nullptr;
  controlplane::ManagementService* management_ = nullptr;
  /// Message transport between the service and the node executor
  /// (options_.use_transport).  Fault-free and inline, so every dispatch
  /// resolves synchronously; the stack outlives control-plane recoveries
  /// and is re-pointed at each new incarnation.
  std::unique_ptr<net::InProcessTransport> transport_;
  std::unique_ptr<net::NodeAgent> agent_;
  std::unique_ptr<net::TransportDispatcher> dispatcher_;
  /// Multi-node wiring (multi_node_transport()): one agent per node at
  /// endpoints 1..num_nodes, plus the lease-driven health tracker and
  /// failover engine when failure detection is enabled.
  std::vector<std::unique_ptr<net::NodeAgent>> agents_;
  std::unique_ptr<controlplane::NodeHealthTracker> tracker_;
  std::unique_ptr<controlplane::FailoverEngine> engine_;
  /// Databases force-evicted by a node crash and not yet re-placed; the
  /// failover engine enumerates these for the dead node.
  std::vector<uint8_t> crash_evicted_;
  /// Failover-engine requeue count after the previous lease tick, so the
  /// tick only pumps the service when the engine actually enqueued work
  /// (a fault-free run must not see extra pumps).
  uint64_t failover_requeued_seen_ = 0;
  Rng failure_rng_{0};
  uint64_t cp_recoveries_ = 0;
  uint64_t cp_last_replayed_ = 0;
  std::unique_ptr<telemetry::UsageLedger> ledger_;
  telemetry::EventCounts counts_;
  /// Null under Telemetry::kStreaming — events are counted, not buffered.
  std::unique_ptr<telemetry::Recorder> recorder_;
};

void FleetSimulation::OnTransition(DbId db,
                                   const policy::TransitionEvent& e) {
  ++generation_[db];
  // Algorithm 1 line 31: persist the predicted start in the metadata
  // store when physically pausing (0 when no prediction).
  (void)metadata_->UpsertState(db, e.to, e.prediction.start);

  switch (e.to) {
    case DbState::kResumed:
      // Login events themselves are recorded in HandleSessionStart (one
      // per first-login-after-idle); here only phases are tracked.
      if (e.cause == TransitionCause::kReactiveResume) {
        // Resources take resume_latency to come back; the customer waits.
        SetPhase(db, Phase::kUnavailable, e.time);
        if (options_.storm_layer_enabled()) {
          // The reactive resume routes through the control plane's
          // multi-class queue and the finite node capacity: the delay is
          // base service time plus whatever congestion the node has.
          reactive_login_at_[db] = e.time;
          reactive_login_gen_[db] = generation_[db];
          (void)management_->EnqueueReactive(db, e.time);
          (void)management_->Pump(e.time);
        } else {
          Push(e.time + options_.resume_latency,
               SimEventType::kResumeLatencyDone, db, generation_[db]);
        }
      } else {
        SetPhase(db, Phase::kActive, e.time);
      }
      break;
    case DbState::kLogicallyPaused:
      if (e.cause == TransitionCause::kProactiveResume) {
        RecordEvent(e.time, db, EventKind::kProactiveResume);
        SetPhase(db, Phase::kIdleProactive, e.time);
      } else {
        RecordEvent(e.time, db, EventKind::kLogicalPause);
        SetPhase(db, Phase::kIdleLogical, e.time);
      }
      if (options_.eviction_per_hour > 0) {
        double mean_seconds = 3600.0 / options_.eviction_per_hour;
        EpochSeconds at =
            e.time + static_cast<DurationSeconds>(
                         eviction_rng_[db].NextExponential(mean_seconds));
        if (at < options_.end) {
          Push(at, SimEventType::kEviction, db, generation_[db]);
        }
      }
      break;
    case DbState::kPhysicallyPaused:
      RecordEvent(e.time, db, EventKind::kPhysicalPause);
      if (e.cause == TransitionCause::kForcedEviction) {
        RecordEvent(e.time, db, EventKind::kForcedEviction);
      }
      SetPhase(db, Phase::kReclaimed, e.time);
      break;
  }
}

Status FleetSimulation::HandleDbCreated(const SimEvent& ev) {
  DbId db = ev.db;
  if (static_cast<uint64_t>(db_offset_ + db) < options_.sql_history_count) {
    // The real SQL stack (ephemeral: no on-disk directory per simulated
    // database, but the full B+tree/buffer-pool/checksum path runs).
    PRORP_ASSIGN_OR_RETURN(auto sql_store, history::SqlHistoryStore::Open());
    sql_history_[db] = sql_store.get();
    history_[db] = sql_store.get();
    owned_sql_.push_back(std::move(sql_store));
  } else if (options_.use_null_history) {
    // Reactive/always-on controllers write history but never read it:
    // one shared no-op store serves the whole shard.
    history_[db] = &null_history_;
  } else {
    history_[db] = mem_history_pool_.Emplace();
  }
  if (!eviction_rng_.empty()) {
    eviction_rng_[db].Seed(options_.seed ^
                           (0x9E3779B97F4A7C15ULL *
                            (static_cast<uint64_t>(db_offset_ + db) + 1)));
  }
  const forecast::Predictor* predictor =
      options_.mode == PolicyMode::kProactive ? predictor_.get() : nullptr;
  controllers_[db] = controller_pool_.Emplace(
      options_.config.policy, options_.mode, history_[db], predictor,
      ev.time, [this, db](const policy::TransitionEvent& e) {
        OnTransition(db, e);
      });
  PRORP_RETURN_IF_ERROR(metadata_->UpsertState(db, DbState::kResumed, 0));
  // A creation login is not a "first login after an idle interval", so it
  // does not enter the QoS statistics.
  SetPhase(db, Phase::kActive, ev.time);
  // The creation login is session 0; its end is the next event.
  Push(cur_session_end_[db], SimEventType::kSessionEnd, db, 0);
  return Status::OK();
}

Status FleetSimulation::HandleSessionStart(const SimEvent& ev) {
  PRORP_ASSIGN_OR_RETURN(policy::LoginOutcome outcome,
                         controllers_[ev.db]->OnActivityStart(ev.time));
  if (outcome == policy::LoginOutcome::kReactiveResume) {
    RecordEvent(ev.time, ev.db, EventKind::kLoginReactive);
  } else if (outcome == policy::LoginOutcome::kResourcesAvailable) {
    RecordEvent(ev.time, ev.db, EventKind::kLoginAvailable);
    if (options_.mode == PolicyMode::kAlwaysOn) {
      SetPhase(ev.db, Phase::kActive, ev.time);  // no FSM transition fires
    }
  }
  SyncTimer(ev.db);
  Push(cur_session_end_[ev.db], SimEventType::kSessionEnd, ev.db, ev.aux);
  return Status::OK();
}

Status FleetSimulation::HandleSessionEnd(const SimEvent& ev) {
  PRORP_RETURN_IF_ERROR(controllers_[ev.db]->OnActivityEnd(ev.time));
  RecordEvent(ev.time, ev.db, EventKind::kLogout);
  if (options_.mode == PolicyMode::kAlwaysOn) {
    // Resources stay allocated; the idle time is plain logical-pause idle.
    SetPhase(ev.db, Phase::kIdleLogical, ev.time);
  }
  SyncTimer(ev.db);
  workload::Session next;
  if (cursors_[ev.db] != nullptr && cursors_[ev.db]->Next(&next)) {
    cur_session_end_[ev.db] = next.end;
    Push(next.start, SimEventType::kSessionStart, ev.db, ev.aux + 1);
  } else {
    cursors_[ev.db].reset();  // trace exhausted: free the generator state
  }
  return Status::OK();
}

Status FleetSimulation::HandleTimer(const SimEvent& ev) {
  if (controllers_[ev.db] == nullptr) return Status::OK();
  if (scheduled_timer_[ev.db] != ev.time ||
      scheduled_timer_gen_[ev.db] != ev.aux) {
    return Status::OK();  // superseded or cancelled: this event is stale
  }
  scheduled_timer_[ev.db] = 0;  // this event is consumed either way
  if (controllers_[ev.db]->NextTimerAt() == ev.time) {
    PRORP_RETURN_IF_ERROR(controllers_[ev.db]->OnTimerCheck(ev.time));
  }
  SyncTimer(ev.db);
  return Status::OK();
}

Status FleetSimulation::HandleResumeOpTick(const SimEvent& ev) {
  PRORP_RETURN_IF_ERROR(
      management_->RunOnce(ev.time, options_.use_sql_scan_for_resume_op)
          .status());
  if (plane_ != nullptr) PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
  EpochSeconds next =
      ev.time + options_.config.control_plane.resume_operation_period;
  if (next < options_.end) Push(next, SimEventType::kResumeOpTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleScrubTick(const SimEvent& ev) {
  for (history::SqlHistoryStore* store : sql_history_) {
    if (store == nullptr || store->quarantined()) continue;
    // A scrub failure must not kill the run: a dirty store repairs or
    // quarantines itself, and the integrity counters record the outcome.
    (void)store->Scrub();
  }
  EpochSeconds next = ev.time + options_.scrub_interval;
  if (next < options_.end) Push(next, SimEventType::kScrubTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleEviction(const SimEvent& ev) {
  LifecycleController* controller = controllers_[ev.db];
  if (controller == nullptr || generation_[ev.db] != ev.aux) {
    return Status::OK();  // the pause this hazard was drawn for is over
  }
  if (controller->state() != DbState::kLogicallyPaused ||
      controller->active()) {
    return Status::OK();
  }
  PRORP_RETURN_IF_ERROR(controller->OnForcedEviction(ev.time));
  SyncTimer(ev.db);
  return Status::OK();
}

Status FleetSimulation::HandleResumeLatencyDone(const SimEvent& ev) {
  if (controllers_[ev.db] == nullptr) return Status::OK();
  if (options_.storm_layer_enabled() && reactive_login_at_[ev.db] > 0 &&
      ev.aux == reactive_login_gen_[ev.db]) {
    // First completion (original or hedge) wins; later ones fall through
    // to the generation check below and are dropped as stale.
    management_->CompleteWorkflow(ev.db, ev.time);
    if (reactive_login_at_[ev.db] >= options_.measure_from) {
      const EpochSeconds login_at = reactive_login_at_[ev.db];
      DurationSeconds delay = ev.time - login_at;
      if (full_telemetry()) login_delay_.Add(static_cast<double>(delay));
      login_delay_hist_.Add(delay);
      // Attribute the wait: did it start inside an outage window of the
      // home node (ride it out), or inside the node-crash window
      // (failover should have re-placed the database elsewhere)?
      const size_t home = NodeOf(ev.db);
      if (outages_.enabled() && outages_.DownAt(home, login_at)) {
        ++robustness_.outage_waited_logins;
        robustness_.outage_wait_seconds += static_cast<uint64_t>(delay);
      } else if (options_.node_crash_node >= 0 &&
                 home == static_cast<size_t>(options_.node_crash_node) &&
                 login_at >= options_.node_crash_at &&
                 (options_.node_crash_duration <= 0 ||
                  login_at <
                      options_.node_crash_at + options_.node_crash_duration)) {
        ++robustness_.failover_waited_logins;
        robustness_.failover_wait_seconds += static_cast<uint64_t>(delay);
      }
    }
    reactive_login_at_[ev.db] = 0;
  }
  if (generation_[ev.db] != ev.aux) return Status::OK();
  if (controllers_[ev.db]->active() &&
      current_phase_[ev.db] == Phase::kUnavailable) {
    SetPhase(ev.db, Phase::kActive, ev.time);
  }
  return Status::OK();
}

Status FleetSimulation::HandlePumpTick(const SimEvent& ev) {
  // Reactive work arriving between proactive iterations must not wait for
  // the next RunOnce: drain the reactive class and run the watchdog.
  (void)management_->Pump(ev.time);
  if (plane_ != nullptr) PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
  EpochSeconds next =
      ev.time + options_.config.control_plane.resume_operation_period;
  if (next < options_.end) Push(next, SimEventType::kPumpTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleMaintenanceTick(const SimEvent& ev) {
  // Enqueue up to maintenance_batch physically paused idle databases as
  // lowest-class touches, round-robin over the fleet slice.
  size_t enqueued = 0;
  for (size_t scanned = 0;
       scanned < num_dbs_ && enqueued < options_.maintenance_batch;
       ++scanned) {
    DbId db = maint_cursor_;
    maint_cursor_ = (maint_cursor_ + 1) % num_dbs_;
    if (controllers_[db] == nullptr ||
        controllers_[db]->state() != DbState::kPhysicallyPaused) {
      continue;
    }
    if (management_->EnqueueMaintenance(db, ev.time).ok()) ++enqueued;
  }
  EpochSeconds next = ev.time + options_.maintenance_interval;
  if (next < options_.end) Push(next, SimEventType::kMaintenanceTick, 0, 0);
  return Status::OK();
}

void FleetSimulation::HandleMeasureStart(const SimEvent& ev) {
  // Swap in a fresh ledger/recorder/counter set seeded with the current
  // phases: the warm-up period does not count toward the KPIs.
  auto fresh = std::make_unique<telemetry::UsageLedger>(num_dbs_, ev.time);
  for (DbId db = 0; db < num_dbs_; ++db) {
    if (controllers_[db] != nullptr) {
      fresh->SetPhase(db, current_phase_[db], ev.time);
    }
  }
  ledger_ = std::move(fresh);
  counts_ = telemetry::EventCounts();
  if (full_telemetry()) {
    recorder_ = std::make_unique<telemetry::Recorder>();
  }
}

controlplane::ManagementService::ResumeCallback
FleetSimulation::MakeResumeCallback() {
  return [this](const controlplane::ResumeAttempt& a,
                EpochSeconds now) -> Status {
    return ExecuteResume(a, now, NodeOf(a.db));
  };
}

Status FleetSimulation::ExecuteResume(const controlplane::ResumeAttempt& a,
                                      EpochSeconds now, size_t node) {
  if (a.node_offset != 0) {
    // Hedge: route to a different (least-loaded) node.
    node = capacity_ != nullptr
               ? capacity_->LeastLoadedOther(node, now)
               : (node + static_cast<size_t>(a.node_offset)) %
                     static_cast<size_t>(std::max(1, options_.num_nodes));
  }
  if (a.cls == controlplane::ResumeClass::kReactiveLogin) {
    const bool login_waiting =
        !reactive_login_at_.empty() && controllers_[a.db] != nullptr &&
        reactive_login_at_[a.db] != 0 &&
        current_phase_[a.db] == Phase::kUnavailable;
    if (!login_waiting) return ExecuteFailoverPlacement(a, now, node);
    // The customer's connection retry loop rides out outages and
    // congestion: the workflow never fails, it just takes longer.
    EpochSeconds blocked_until =
        outages_.enabled() ? outages_.DownUntil(node, now) : 0;
    NodeCapacityModel::Grant g = capacity_->Acquire(
        node, now, common::JitterHash(a.db, a.attempt), blocked_until,
        /*limited=*/false);
    Push(g.done, SimEventType::kResumeLatencyDone, a.db,
         reactive_login_gen_[a.db]);
    return Status::OK();
  }
  if (outages_.enabled() && outages_.DownAt(node, now)) {
    ++robustness_.resume_failures_outage;
    return Status::Unavailable("node outage");
  }
  if (a.cls == controlplane::ResumeClass::kMaintenance) {
    if (controllers_[a.db] == nullptr) {
      return Status::FailedPrecondition("database not yet created");
    }
    Status s = controllers_[a.db]->OnMaintenanceTouch(now);
    if (s.ok() && capacity_ != nullptr) {
      (void)capacity_->Acquire(node, now,
                               common::JitterHash(a.db, a.attempt), 0);
    }
    return s;
  }
  if (options_.resume_failure_probability > 0 &&
      failure_rng_.NextBool(options_.resume_failure_probability)) {
    ++robustness_.resume_failures_injected;
    return Status::Unavailable("injected workflow failure");
  }
  if (controllers_[a.db] == nullptr) {
    return Status::FailedPrecondition("database not yet created");
  }
  Status s = controllers_[a.db]->OnProactiveResume(now);
  if (s.ok()) {
    SyncTimer(a.db);
    if (capacity_ != nullptr) {
      // Pre-warms consume node capacity too — this is exactly the
      // coupling a naive post-outage catch-up abuses.
      (void)capacity_->Acquire(node, now,
                               common::JitterHash(a.db, a.attempt), 0);
    }
  }
  return s;
}

Status FleetSimulation::ExecuteFailoverPlacement(
    const controlplane::ResumeAttempt& a, EpochSeconds now, size_t node) {
  // A reactive-class attempt arriving with no login waiting is either a
  // failover re-placement — the crash evicted the database's warm
  // resources, and the engine re-queued it at reactive priority to
  // re-warm them on a survivor — or a genuinely stale workflow.
  LifecycleController* c = controllers_[a.db];
  if (c == nullptr || crash_evicted_.empty() || !crash_evicted_[a.db] ||
      c->state() != DbState::kPhysicallyPaused) {
    return Status::FailedPrecondition("login no longer waiting");
  }
  if (outages_.enabled() && outages_.DownAt(node, now)) {
    ++robustness_.resume_failures_outage;
    return Status::Unavailable("node outage");
  }
  Status s = c->OnProactiveResume(now);
  if (s.ok()) {
    crash_evicted_[a.db] = 0;
    SyncTimer(a.db);
    if (capacity_ != nullptr) {
      (void)capacity_->Acquire(node, now,
                               common::JitterHash(a.db, a.attempt), 0);
    }
    // Close the workflow once the re-placement lands (the login path
    // closes it from kResumeLatencyDone; there is no login here).
    Push(now, SimEventType::kFailoverPlaced, a.db, 0);
  }
  return s;
}

controlplane::ManagementService::ResumeCallback
FleetSimulation::MakeServiceCallback() {
  if (!options_.use_transport) return MakeResumeCallback();
  if (dispatcher_ == nullptr) {
    transport_ = std::make_unique<net::InProcessTransport>();
    if (multi_node_transport()) {
      // Real per-node endpoints: agent at endpoint i+1 serves node i.
      // The resolver routes each attempt to its home node, diverting a
      // declared-dead node's work to the next live endpoint (the
      // executor still re-warms on the node it actually runs on).
      const int n = std::max(1, options_.num_nodes);
      net::TransportDispatcher::Options dopt;
      dopt.first_node = 1;
      dopt.num_nodes = n;
      if (options_.failure_detection_enabled) {
        dopt.lease_interval = options_.lease_interval;
        dopt.lease_ttl = options_.lease_ttl;
        controlplane::NodeHealthTracker::Options hopt;
        hopt.lease_ttl = options_.lease_ttl;
        hopt.suspect_after = options_.suspect_after;
        hopt.dead_grace = options_.dead_grace;
        hopt.rejoin_after = options_.rejoin_after;
        tracker_ = std::make_unique<controlplane::NodeHealthTracker>(hopt);
      }
      dispatcher_ = std::make_unique<net::TransportDispatcher>(
          transport_.get(), dopt,
          [this, n](const controlplane::ResumeAttempt& a) {
            auto target = static_cast<net::EndpointId>(1 + NodeOf(a.db));
            if (tracker_ != nullptr) {
              for (int i = 0;
                   i < n && tracker_->health(target) ==
                                controlplane::NodeHealth::kDead;
                   ++i) {
                target = static_cast<net::EndpointId>(target % n + 1);
              }
            }
            return target;
          });
      if (tracker_ != nullptr) {
        dispatcher_->set_health_tracker(tracker_.get());
      }
      agents_.reserve(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        const size_t node = static_cast<size_t>(i);
        agents_.push_back(std::make_unique<net::NodeAgent>(
            static_cast<net::EndpointId>(1 + i), transport_.get(),
            [this, node](const controlplane::ResumeAttempt& a,
                         EpochSeconds now) -> Status {
              return ExecuteResume(a, now, node);
            }));
      }
    } else {
      // One dispatcher on the plane side, one agent standing in for the
      // whole node fleet: per-node routing stays inside the executor
      // (the callback above picks the node from the attempt), so a
      // single endpoint preserves bit-identity with the direct-call run.
      dispatcher_ = std::make_unique<net::TransportDispatcher>(
          transport_.get(), net::TransportDispatcher::Options{});
      agent_ = std::make_unique<net::NodeAgent>(
          /*id=*/1, transport_.get(), MakeResumeCallback());
    }
  }
  return [this](const controlplane::ResumeAttempt& a,
                EpochSeconds now) -> Status {
    return dispatcher_->DispatchResume(a, now);
  };
}

void FleetSimulation::SyncTransportToService() {
  if (dispatcher_ == nullptr) return;
  dispatcher_->set_service(management_);
  // Fence the node(s) against the dead incarnation's stragglers before
  // the new one dispatches anything (inline transport has none; the call
  // keeps the recovery contract explicit).
  if (agent_ != nullptr) agent_->FenceEpoch(management_->epoch());
  for (auto& ag : agents_) ag->FenceEpoch(management_->epoch());
  if (tracker_ == nullptr) return;
  if (engine_ == nullptr) {
    engine_ = std::make_unique<controlplane::FailoverEngine>(
        management_, tracker_.get(), [this](uint32_t node) {
          // Placement source: the crash-evicted databases homed on the
          // dead endpoint and not yet re-placed.
          std::vector<DbId> dbs;
          for (DbId db = 0; db < num_dbs_; ++db) {
            if (!crash_evicted_.empty() && crash_evicted_[db] &&
                NodeOf(db) + 1 == node) {
              dbs.push_back(db);
            }
          }
          return dbs;
        });
  } else {
    // The tracker and engine ride across a plane crash (they model
    // plane-side RAM, but re-detection after recovery is covered by the
    // failover-torture harness); only the service pointer moves.
    engine_->set_service(management_);
  }
}

Status FleetSimulation::OpenDurableControlPlane(EpochSeconds now) {
  controlplane::DurableControlPlane::Options cp;
  cp.dir = options_.control_plane_journal_dir;
  cp.config = options_.config.control_plane;
  cp.sync_mode = controlplane::ControlPlaneJournal::SyncMode::kBuffered;
  cp.checkpoint_every = options_.control_plane_checkpoint_every;
  PRORP_ASSIGN_OR_RETURN(
      plane_, controlplane::DurableControlPlane::Open(
                  cp, MakeServiceCallback(),
                  [this](DbId db) {
                    // Reconcile oracle: the node holds the resumed
                    // resources iff the database's lifecycle FSM is not
                    // physically paused.
                    return controllers_[db] != nullptr &&
                           controllers_[db]->state() !=
                               DbState::kPhysicallyPaused;
                  },
                  now));
  metadata_ = &plane_->metadata();
  management_ = &plane_->service();
  SyncTransportToService();
  cp_last_replayed_ = plane_->recovery_stats().replayed;
  return Status::OK();
}

Status FleetSimulation::HandleControlPlaneCrash(const SimEvent& ev) {
  // Simulated control-plane process death at an event boundary: the
  // in-memory plane is destroyed — queue contents, breaker state and
  // accounting survive only through journal + checkpoint — and recovery
  // reopens the directory under a fresh epoch.  Node-side work already
  // granted (pending kResumeLatencyDone events) is unaffected;
  // dispatched-but-unacked workflows reconcile against the lifecycle
  // FSMs through the oracle above.
  plane_.reset();
  metadata_ = nullptr;
  management_ = nullptr;
  PRORP_RETURN_IF_ERROR(OpenDurableControlPlane(ev.time));
  ++cp_recoveries_;
  return Status::OK();
}

Status FleetSimulation::HandleLeaseTick(const SimEvent& ev) {
  // The plane's lease loop: renew/probe every node, feed the failure
  // detector, and drain any death declarations into failover re-queues.
  dispatcher_->Tick(ev.time);
  if (engine_ != nullptr) {
    PRORP_RETURN_IF_ERROR(engine_->Tick(ev.time));
    const uint64_t requeued = engine_->stats().requeued;
    if (requeued != failover_requeued_seen_) {
      failover_requeued_seen_ = requeued;
      (void)management_->Pump(ev.time);
    }
  }
  EpochSeconds next = ev.time + options_.lease_interval;
  if (next < options_.end) Push(next, SimEventType::kLeaseTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleNodeCrash(const SimEvent& ev) {
  const size_t node = static_cast<size_t>(ev.aux);
  if (node < agents_.size()) agents_[node]->Crash();
  // The node's RAM is gone: every database idling there with warm
  // resources (logically paused) loses them.  Active databases are
  // assumed HA-protected above this model, and physically paused ones
  // had nothing on the node to lose.
  for (DbId db = 0; db < num_dbs_; ++db) {
    LifecycleController* c = controllers_[db];
    if (c == nullptr || NodeOf(db) != node) continue;
    if (c->state() != DbState::kLogicallyPaused || c->active()) continue;
    PRORP_RETURN_IF_ERROR(c->OnForcedEviction(ev.time));
    if (!crash_evicted_.empty()) crash_evicted_[db] = 1;
    SyncTimer(db);
  }
  return Status::OK();
}

Status FleetSimulation::HandleNodeRestart(const SimEvent& ev) {
  const size_t node = static_cast<size_t>(ev.aux);
  if (node < agents_.size()) agents_[node]->Restart(ev.time);
  return Status::OK();
}

Result<SimReport> FleetSimulation::Run() {
  PRORP_RETURN_IF_ERROR(options_.config.Validate());
  if (options_.end <= 0) {
    return Status::InvalidArgument("SimOptions.end is required");
  }
  if (options_.control_plane_crash_at > 0 &&
      options_.control_plane_journal_dir.empty()) {
    return Status::InvalidArgument(
        "control_plane_crash_at requires control_plane_journal_dir");
  }
  if (options_.use_null_history && options_.mode == PolicyMode::kProactive) {
    return Status::InvalidArgument(
        "use_null_history discards the history the proactive policy "
        "predicts from");
  }
  if (options_.use_lite_metadata && options_.use_sql_scan_for_resume_op) {
    return Status::InvalidArgument(
        "use_lite_metadata drops the SQL mirror the literal-scan "
        "validation path reads");
  }
  if (options_.failure_detection_enabled && !options_.use_transport) {
    return Status::InvalidArgument(
        "failure_detection_enabled requires use_transport (leases ride "
        "the message stack)");
  }
  if (options_.node_crash_node >= 0) {
    if (!options_.use_transport) {
      return Status::InvalidArgument(
          "node_crash_node requires use_transport");
    }
    if (options_.node_crash_node >= std::max(1, options_.num_nodes)) {
      return Status::InvalidArgument("node_crash_node out of range");
    }
    if (options_.node_crash_at <= 0) {
      return Status::InvalidArgument("node_crash_at must be positive");
    }
  }
  size_t n = num_dbs_;
  controllers_.assign(n, nullptr);
  history_.assign(n, nullptr);
  if (options_.sql_history_count > 0) sql_history_.assign(n, nullptr);
  generation_.assign(n, 0);
  scheduled_timer_.assign(n, 0);
  scheduled_timer_gen_.assign(n, 0);
  if (options_.eviction_per_hour > 0) eviction_rng_.assign(n, Rng(0));
  if (options_.storm_layer_enabled()) {
    reactive_login_at_.assign(n, 0);
    reactive_login_gen_.assign(n, 0);
  }
  cursors_.resize(n);
  cur_session_end_.assign(n, 0);
  current_phase_.assign(n, Phase::kReclaimed);
  phase_known_.assign(n, 0);
  if (multi_node_transport()) crash_evicted_.assign(n, 0);
  predictor_ = std::make_unique<forecast::FastPredictor>(
      options_.config.policy.prediction);

  outages_ = OutageSchedule::Build(options_);
  robustness_.outage_windows = outages_.windows();
  robustness_.outage_seconds = outages_.seconds();

  if (options_.storm_layer_enabled()) {
    CapacityOptions cap;
    cap.num_nodes = static_cast<size_t>(std::max(1, options_.num_nodes));
    cap.concurrency_per_node = options_.resume_concurrency_per_node;
    cap.service_time = options_.resume_latency;
    cap.admission_rate = options_.node_admission_rate;
    cap.admission_burst = options_.node_admission_burst;
    cap.queue_jitter_max = options_.resume_queue_jitter_max;
    cap.seed = options_.seed;
    capacity_ = std::make_unique<NodeCapacityModel>(cap);
  }

  failure_rng_ = rng_.Fork();
  if (!options_.control_plane_journal_dir.empty()) {
    PRORP_RETURN_IF_ERROR(OpenDurableControlPlane(/*now=*/0));
  } else {
    PRORP_ASSIGN_OR_RETURN(
        owned_metadata_,
        MetadataStore::Open(options_.use_lite_metadata
                                ? MetadataStore::Backing::kIndexOnly
                                : MetadataStore::Backing::kSqlMirrored));
    metadata_ = owned_metadata_.get();
    owned_management_ = std::make_unique<controlplane::ManagementService>(
        metadata_, options_.config.control_plane, MakeServiceCallback());
    management_ = owned_management_.get();
    SyncTransportToService();
  }

  EpochSeconds measure_from = options_.measure_from;
  // The report only ever publishes fleet totals, so skip the ledger's
  // per-database breakdown (bit-identical; see UsageLedger).
  ledger_ = std::make_unique<telemetry::UsageLedger>(
      n, measure_from > 0 ? measure_from : 0, /*track_per_db=*/false);
  if (full_telemetry()) {
    recorder_ = std::make_unique<telemetry::Recorder>();
  }

  EpochSeconds earliest_start = options_.end;
  for (DbId db = 0; db < n; ++db) {
    std::unique_ptr<workload::SessionCursor> cursor =
        source_->Open(db_offset_ + db);
    workload::Session first;
    if (!cursor->Next(&first)) continue;
    earliest_start = std::min(earliest_start, first.start);
    if (first.start < options_.end) {
      cur_session_end_[db] = first.end;
      cursors_[db] = std::move(cursor);
      Push(first.start, SimEventType::kDbCreated, db, 0);
    }
  }
  if (options_.mode == PolicyMode::kProactive &&
      options_.proactive_resume_enabled) {
    // The operation starts with the earliest database; earlier ticks
    // would only scan an empty metadata store.
    if (earliest_start + 1 < options_.end) {
      Push(earliest_start + 1, SimEventType::kResumeOpTick, 0, 0);
    }
  } else if (options_.storm_layer_enabled()) {
    // No RunOnce iterations: the pump tick keeps the reactive drain and
    // the deadline watchdog running between logins.
    if (earliest_start + 1 < options_.end) {
      Push(earliest_start + 1, SimEventType::kPumpTick, 0, 0);
    }
  }
  if (options_.storm_layer_enabled() &&
      options_.maintenance_interval > 0 && options_.maintenance_batch > 0 &&
      options_.mode == PolicyMode::kProactive) {
    EpochSeconds first = earliest_start + options_.maintenance_interval;
    if (first < options_.end) {
      Push(first, SimEventType::kMaintenanceTick, 0, 0);
    }
  }
  if (options_.scrub_interval > 0 && options_.sql_history_count > 0) {
    // Anchored to the earliest database: earlier ticks have nothing to
    // scrub.
    EpochSeconds first_scrub = earliest_start + options_.scrub_interval;
    if (first_scrub < options_.end) {
      Push(first_scrub, SimEventType::kScrubTick, 0, 0);
    }
  }
  if (options_.control_plane_crash_at > 0 &&
      options_.control_plane_crash_at < options_.end) {
    Push(options_.control_plane_crash_at, SimEventType::kControlPlaneCrash,
         0, 0);
  }
  // The transport maintenance tick: lease fan-out + failure detection
  // when enabled, and (multi-node wiring generally) the retransmit /
  // timeout loop a deaf node's unanswered dispatches depend on.
  if (multi_node_transport() && options_.lease_interval > 0 &&
      earliest_start + 1 < options_.end) {
    Push(earliest_start + 1, SimEventType::kLeaseTick, 0, 0);
  }
  if (options_.node_crash_node >= 0 && options_.node_crash_at > 0 &&
      options_.node_crash_at < options_.end) {
    Push(options_.node_crash_at, SimEventType::kNodeCrash, 0,
         static_cast<uint64_t>(options_.node_crash_node));
    robustness_.node_crash_windows = 1;
    EpochSeconds back = options_.node_crash_at + options_.node_crash_duration;
    if (options_.node_crash_duration > 0 && back < options_.end) {
      Push(back, SimEventType::kNodeRestart, 0,
           static_cast<uint64_t>(options_.node_crash_node));
      robustness_.node_crash_seconds =
          static_cast<uint64_t>(options_.node_crash_duration);
    } else {
      // No restart before the horizon: down for the rest of the run.
      robustness_.node_crash_seconds =
          static_cast<uint64_t>(options_.end - options_.node_crash_at);
    }
  }
  if (measure_from > 0) {
    Push(measure_from, SimEventType::kMeasureStart, 0, 0);
  }
  Push(measure_from > 0 ? measure_from : options_.end - 1,
       SimEventType::kAllocationSample, 0, 0);

  // The unified tick-drain loop: both backends hand over one virtual
  // second of events at a time, ascending seq; handlers appending to the
  // current tick extend the same pass.  Indexing (not iterators) because
  // tick_ may reallocate mid-loop.
  bool done = false;
  while (!done && queue_.PopNextTick(&tick_)) {
    if (tick_.front().time >= options_.end) break;
    tick_time_ = tick_.front().time;
    for (size_t i = 0; i < tick_.size(); ++i) {
      SimEvent ev = tick_[i];
      if (ev.time >= options_.end) {  // unreachable; defensive
        done = true;
        break;
      }
      ++events_processed_;
      switch (ev.type) {
        case SimEventType::kDbCreated:
          PRORP_RETURN_IF_ERROR(HandleDbCreated(ev));
          break;
        case SimEventType::kSessionStart:
          PRORP_RETURN_IF_ERROR(HandleSessionStart(ev));
          break;
        case SimEventType::kSessionEnd:
          PRORP_RETURN_IF_ERROR(HandleSessionEnd(ev));
          break;
        case SimEventType::kTimer:
          PRORP_RETURN_IF_ERROR(HandleTimer(ev));
          break;
        case SimEventType::kResumeOpTick:
          PRORP_RETURN_IF_ERROR(HandleResumeOpTick(ev));
          break;
        case SimEventType::kScrubTick:
          PRORP_RETURN_IF_ERROR(HandleScrubTick(ev));
          break;
        case SimEventType::kEviction:
          PRORP_RETURN_IF_ERROR(HandleEviction(ev));
          break;
        case SimEventType::kResumeLatencyDone:
          PRORP_RETURN_IF_ERROR(HandleResumeLatencyDone(ev));
          break;
        case SimEventType::kMeasureStart:
          HandleMeasureStart(ev);
          break;
        case SimEventType::kPumpTick:
          PRORP_RETURN_IF_ERROR(HandlePumpTick(ev));
          break;
        case SimEventType::kMaintenanceTick:
          PRORP_RETURN_IF_ERROR(HandleMaintenanceTick(ev));
          break;
        case SimEventType::kControlPlaneCrash:
          PRORP_RETURN_IF_ERROR(HandleControlPlaneCrash(ev));
          break;
        case SimEventType::kLeaseTick:
          PRORP_RETURN_IF_ERROR(HandleLeaseTick(ev));
          break;
        case SimEventType::kNodeCrash:
          PRORP_RETURN_IF_ERROR(HandleNodeCrash(ev));
          break;
        case SimEventType::kNodeRestart:
          PRORP_RETURN_IF_ERROR(HandleNodeRestart(ev));
          break;
        case SimEventType::kFailoverPlaced:
          management_->CompleteWorkflow(ev.db, ev.time);
          break;
        case SimEventType::kAllocationSample: {
          allocated_samples_.Add(static_cast<double>(allocated_now_));
          EpochSeconds next_sample = ev.time + Minutes(5);
          if (next_sample < options_.end) {
            Push(next_sample, SimEventType::kAllocationSample, 0, 0);
          }
          break;
        }
      }
    }
    tick_time_ = -1;
    // Same post-storm policy as the queue backends: a tick inflated by a
    // synchronized herd must not pin its capacity forever.
    if (tick_.capacity() > 4096 && tick_.size() < tick_.capacity() / 4) {
      std::vector<SimEvent>().swap(tick_);
    } else {
      tick_.clear();
    }
  }
  ledger_->Finish(options_.end);

  SimReport report;
  report.usage = ledger_->fleet_total();
  report.counts = counts_;
  report.kpi = telemetry::ComputeKpi(counts_, report.usage);
  // Predictions are counted inside the controllers (the event stream only
  // carries lifecycle transitions).
  for (const LifecycleController* controller : controllers_) {
    if (controller == nullptr) continue;
    report.kpi.predictions += controller->stats().predictions_made;
    robustness_.degraded_enters += controller->stats().degraded_enters;
    robustness_.degraded_exits += controller->stats().degraded_exits;
    robustness_.history_errors += controller->stats().history_errors;
    robustness_.corruption_errors += controller->stats().corruption_errors;
    robustness_.maintenance_touches +=
        controller->stats().maintenance_touches;
  }
  for (const history::SqlHistoryStore* store : sql_history_) {
    if (store == nullptr) continue;
    const storage::IntegrityStats& is = store->integrity_stats();
    robustness_.corruption_detected += is.corruption_detected;
    robustness_.corruption_repaired += is.corruption_repaired;
    robustness_.corruption_quarantined += is.corruption_quarantined;
    robustness_.scrub_passes += is.scrub_passes;
    robustness_.scrub_pages += is.scrub_pages;
    robustness_.scrub_errors += is.scrub_errors;
  }
  if (recorder_ != nullptr) report.recorder = std::move(*recorder_);
  report.diagnostics = management_->diagnostics();
  if (tracker_ != nullptr) {
    robustness_.node_deaths = tracker_->stats().deaths;
    robustness_.node_rejoins = tracker_->stats().rejoins;
  }
  if (engine_ != nullptr) {
    robustness_.failover_requeues = engine_->stats().requeued;
    robustness_.failover_deduped = engine_->stats().deduped;
  }
  for (const auto& ag : agents_) {
    robustness_.resume_failures_node_down +=
        ag->stats().lease_expired_rejected;
  }
  report.robustness = robustness_;
  report.pending_failed = management_->pending_failed();
  report.resumed_per_iteration = management_->resumed_per_iteration();
  report.login_delay = login_delay_;
  report.login_delay_hist = login_delay_hist_;
  if (capacity_ != nullptr) report.resume_waits = capacity_->waits();
  report.control_plane_recoveries = cp_recoveries_;
  report.control_plane_replayed = cp_last_replayed_;
  report.measure_from = measure_from;
  report.measure_end = options_.end;
  report.allocated_samples = allocated_samples_;
  report.events_processed = events_processed_;
  report.event_queue_bytes =
      queue_.MemoryBytes() + tick_.capacity() * sizeof(SimEvent);
  for (DbId db = 0; db < n; ++db) {
    if (history_[db] == nullptr) continue;
    uint64_t tuples = history_[db]->NumTuples();
    uint64_t bytes = history_[db]->SizeBytes();
    if (full_telemetry()) {
      report.history_tuples.Add(static_cast<double>(tuples));
      report.history_bytes.Add(static_cast<double>(bytes));
    }
    report.history_tuples_hist.Add(static_cast<int64_t>(tuples));
    report.history_bytes_hist.Add(static_cast<int64_t>(bytes));
  }
  return report;
}

/// Merges per-shard reports into the report a whole-fleet serial run
/// would have produced.  Everything a KPI is computed from is a sum
/// (event counts, integer-second phase durations), so the merge is
/// exact, not approximate.
SimReport MergeShardReports(std::vector<SimReport> shards) {
  SimReport merged;
  merged.measure_from = shards.front().measure_from;
  merged.measure_end = shards.front().measure_end;

  std::vector<telemetry::FleetEvent> events;
  std::vector<double> allocated_sums;
  uint64_t predictions = 0;
  for (SimReport& s : shards) {
    merged.usage += s.usage;
    merged.counts.Merge(s.counts);
    predictions += s.kpi.predictions;
    events.insert(events.end(), s.recorder.events().begin(),
                  s.recorder.events().end());
    merged.resumed_per_iteration.Merge(s.resumed_per_iteration);
    merged.history_tuples.Merge(s.history_tuples);
    merged.history_bytes.Merge(s.history_bytes);
    merged.history_tuples_hist.Merge(s.history_tuples_hist);
    merged.history_bytes_hist.Merge(s.history_bytes_hist);
    // Every shard samples on the same 5-minute schedule, so the fleet's
    // concurrent-allocation census is the element-wise sum.
    const std::vector<double>& samples = s.allocated_samples.values();
    if (allocated_sums.size() < samples.size()) {
      allocated_sums.resize(samples.size(), 0);
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      allocated_sums[i] += samples[i];
    }
    merged.diagnostics.Merge(s.diagnostics);
    merged.login_delay.Merge(s.login_delay);
    merged.login_delay_hist.Merge(s.login_delay_hist);
    merged.resume_waits.Merge(s.resume_waits);
    merged.pending_failed += s.pending_failed;
    merged.control_plane_recoveries += s.control_plane_recoveries;
    merged.control_plane_replayed += s.control_plane_replayed;
    merged.events_processed += s.events_processed;
    merged.event_queue_bytes += s.event_queue_bytes;
    merged.robustness.AccumulateShard(s.robustness);
  }
  // The outage schedule is fleet-global and identical in every shard.
  merged.robustness.outage_windows = shards.front().robustness.outage_windows;
  merged.robustness.outage_seconds = shards.front().robustness.outage_seconds;
  merged.allocated_samples.AddAll(allocated_sums);
  // Restore global time order (shard concatenation is db-grouped).  All
  // KPI consumers are order-independent; this is for readable exports.
  std::stable_sort(events.begin(), events.end(),
                   [](const telemetry::FleetEvent& a,
                      const telemetry::FleetEvent& b) {
                     return a.time < b.time;
                   });
  for (const telemetry::FleetEvent& e : events) {
    merged.recorder.Record(e.time, e.db, e.kind);
  }
  merged.kpi = telemetry::ComputeKpi(merged.counts, merged.usage);
  merged.kpi.predictions = predictions;
  return merged;
}

}  // namespace

Result<SimReport> RunFleetSimulation(const workload::TraceSource& source,
                                     const SimOptions& options) {
  size_t num_dbs = source.num_dbs();
  size_t num_shards =
      options.num_threads > 1
          ? std::min<size_t>(static_cast<size_t>(options.num_threads),
                             num_dbs)
          : 1;
  // Proactive mode couples databases through the shared metadata store
  // and management service, the storm layer couples them through the
  // shared node capacity, the durable control plane couples them through
  // one journal directory, and the message transport couples them through
  // one dispatcher; all run as one event loop.
  if (options.mode == PolicyMode::kProactive || num_shards <= 1 ||
      options.storm_layer_enabled() ||
      !options.control_plane_journal_dir.empty() || options.use_transport) {
    FleetSimulation simulation(source, num_dbs, options, 0);
    return simulation.Run();
  }

  std::vector<std::function<Result<SimReport>()>> jobs;
  jobs.reserve(num_shards);
  size_t base = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    size_t count = num_dbs / num_shards +
                   (shard < num_dbs % num_shards ? 1 : 0);
    DbId offset = static_cast<DbId>(base);
    jobs.emplace_back([&source, count, offset, &options] {
      FleetSimulation simulation(source, count, options, offset);
      return simulation.Run();
    });
    base += count;
  }
  std::vector<Result<SimReport>> results =
      common::RunOnPool<Result<SimReport>>(std::move(jobs), num_shards);
  std::vector<SimReport> shards;
  shards.reserve(results.size());
  for (Result<SimReport>& r : results) {
    PRORP_RETURN_IF_ERROR(r.status());
    shards.push_back(std::move(r.value()));
  }
  return MergeShardReports(std::move(shards));
}

Result<SimReport> RunFleetSimulation(
    const std::vector<workload::DbTrace>& traces, const SimOptions& options) {
  workload::MaterializedTraceSource source(traces);
  return RunFleetSimulation(source, options);
}

}  // namespace prorp::sim
