#include "sim/fleet_simulator.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <queue>

#include "common/backoff.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "controlplane/durable_control_plane.h"
#include "forecast/fast_predictor.h"
#include "history/mem_history_store.h"
#include "history/sql_history_store.h"
#include "net/dispatcher.h"
#include "net/node_agent.h"
#include "net/transport.h"
#include "sim/resume_capacity.h"
#include "telemetry/usage_ledger.h"

namespace prorp::sim {
namespace {

using controlplane::MetadataStore;
using history::MemHistoryStore;
using policy::DbState;
using policy::LifecycleController;
using policy::PolicyMode;
using policy::TransitionCause;
using telemetry::DbId;
using telemetry::EventKind;
using telemetry::Phase;

enum class SimEventType : uint8_t {
  kDbCreated,        // first session begins; controller constructed
  kAllocationSample,  // periodic concurrent-allocation census
  kSessionEnd,       // customer workload completes
  kSessionStart,     // subsequent customer login
  kTimer,            // lifecycle controller wait-condition re-check
  kResumeOpTick,     // periodic proactive resume operation
  kScrubTick,        // periodic integrity scrub of SQL-backed histories
  kEviction,         // capacity-pressure reclamation attempt
  kResumeLatencyDone,  // reactive resume finished; resources usable
  kMeasureStart,     // KPI window begins: swap ledger/recorder
  kPumpTick,         // storm layer: periodic reactive drain + watchdog
  kMaintenanceTick,  // storm layer: enqueue background maintenance load
  kControlPlaneCrash,  // durable mode: simulated control-plane death
};

/// Deterministic per-node outage windows over [0, end).  Derived from the
/// run seed and the node index alone: every shard of a sharded run
/// rebuilds the identical schedule, which is what keeps sharded output
/// bit-identical to serial.
class OutageSchedule {
 public:
  static OutageSchedule Build(const SimOptions& options) {
    OutageSchedule schedule;
    bool random_on = options.num_nodes > 0 &&
                     options.outage_rate_per_day > 0 &&
                     options.outage_duration > 0;
    bool fleet_on = options.fleet_outage_duration > 0 &&
                    options.fleet_outage_at < options.end;
    if (!random_on && !fleet_on) return schedule;
    size_t num_nodes =
        options.num_nodes > 0 ? static_cast<size_t>(options.num_nodes) : 1;
    schedule.nodes_.resize(num_nodes);
    if (random_on) {
      double mean_gap = static_cast<double>(kSecondsPerDay) /
                        options.outage_rate_per_day;
      for (size_t node = 0; node < schedule.nodes_.size(); ++node) {
        Rng rng(options.seed ^
                (0xA24BAED4963EE407ULL * (static_cast<uint64_t>(node) + 1)));
        EpochSeconds t = 0;
        for (;;) {
          t += static_cast<DurationSeconds>(rng.NextExponential(mean_gap));
          if (t >= options.end) break;
          EpochSeconds down_until =
              std::min(t + options.outage_duration, options.end);
          schedule.nodes_[node].push_back({t, down_until});
          t = down_until;
        }
      }
    }
    if (fleet_on) {
      // The fleet-wide correlated window hits every node; overlapping
      // windows are merged below so DownAt's prev-window invariant holds.
      EpochSeconds at = std::max<EpochSeconds>(0, options.fleet_outage_at);
      EpochSeconds until =
          std::min(at + options.fleet_outage_duration, options.end);
      for (auto& wins : schedule.nodes_) wins.push_back({at, until});
    }
    for (auto& wins : schedule.nodes_) {
      std::sort(wins.begin(), wins.end());
      std::vector<std::pair<EpochSeconds, EpochSeconds>> merged;
      for (const auto& w : wins) {
        if (!merged.empty() && w.first <= merged.back().second) {
          merged.back().second = std::max(merged.back().second, w.second);
        } else {
          merged.push_back(w);
        }
      }
      wins = std::move(merged);
      for (const auto& w : wins) {
        ++schedule.windows_;
        schedule.seconds_ += static_cast<uint64_t>(w.second - w.first);
      }
    }
    return schedule;
  }

  bool enabled() const { return !nodes_.empty(); }
  uint64_t windows() const { return windows_; }
  uint64_t seconds() const { return seconds_; }

  bool DownAt(size_t node, EpochSeconds t) const {
    return DownUntil(node, t) != 0;
  }

  /// End of the outage window covering t on the node, or 0 when the node
  /// is up at t.
  EpochSeconds DownUntil(size_t node, EpochSeconds t) const {
    const auto& wins = nodes_[node % nodes_.size()];
    // First window starting after t; the one before it is the only
    // candidate containing t (windows are merged, hence disjoint).
    auto it = std::upper_bound(
        wins.begin(), wins.end(), t,
        [](EpochSeconds v, const std::pair<EpochSeconds, EpochSeconds>& w) {
          return v < w.first;
        });
    if (it != wins.begin() && t < std::prev(it)->second) {
      return std::prev(it)->second;
    }
    return 0;
  }

 private:
  std::vector<std::vector<std::pair<EpochSeconds, EpochSeconds>>> nodes_;
  uint64_t windows_ = 0;
  uint64_t seconds_ = 0;
};

struct SimEvent {
  EpochSeconds time;
  uint64_t seq;  // FIFO tiebreaker for simultaneous events
  SimEventType type;
  DbId db;
  uint64_t aux;  // session index or generation stamp

  bool operator>(const SimEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct DbRuntime {
  const workload::DbTrace* trace = nullptr;
  std::unique_ptr<history::HistoryStore> history;
  /// Non-owning view of `history` when it is the SQL-backed store (the
  /// scrubber and the integrity-counter rollup need the concrete type).
  history::SqlHistoryStore* sql_history = nullptr;
  std::unique_ptr<LifecycleController> controller;
  /// Bumped on every lifecycle transition; stamps scheduled timer,
  /// eviction, and resume-latency events so stale ones are dropped.
  uint64_t generation = 0;
  EpochSeconds scheduled_timer = 0;
  uint64_t scheduled_timer_gen = 0;
  /// Capacity-pressure hazard stream, seeded from the run seed and the
  /// database's fleet-global id so the draws are identical whether the
  /// fleet runs in one piece or sharded across workers.
  Rng eviction_rng{0};
  /// Storm layer: time of the reactive login currently waiting for
  /// resources (0 = none) and the generation it was issued under, so the
  /// first matching completion event records the login delay exactly once
  /// (a hedge produces a second, ignored, completion).
  EpochSeconds reactive_login_at = 0;
  uint64_t reactive_login_gen = 0;
};

/// One discrete-event simulation over a contiguous slice of the fleet.
/// `db_offset` is the fleet-global id of the slice's first trace; all
/// externally visible ids (telemetry events, RNG seeding) are global, so
/// a sharded run merges into the same report a whole-fleet run produces.
class FleetSimulation {
 public:
  FleetSimulation(const workload::DbTrace* traces, size_t num_traces,
                  const SimOptions& options, DbId db_offset)
      : traces_(traces),
        num_traces_(num_traces),
        options_(options),
        db_offset_(db_offset),
        rng_(options.seed) {}

  Result<SimReport> Run();

 private:
  void Push(EpochSeconds time, SimEventType type, DbId db, uint64_t aux) {
    queue_.push({time, seq_++, type, db, aux});
  }

  /// Re-schedules the controller's requested timer if it changed.  A
  /// cancelled timer (NextTimerAt() == 0, e.g. on physical pause) clears
  /// the bookkeeping so the already-queued event is recognized as stale:
  /// otherwise a later legitimate timer at the same timestamp would be
  /// silently consumed by HandleTimer's staleness check.
  void SyncTimer(DbId db) {
    DbRuntime& rt = dbs_[db];
    EpochSeconds t = rt.controller->NextTimerAt();
    if (t == 0) {
      rt.scheduled_timer = 0;
      return;
    }
    if (t != rt.scheduled_timer ||
        rt.scheduled_timer_gen != rt.generation) {
      rt.scheduled_timer = t;
      rt.scheduled_timer_gen = rt.generation;
      Push(t, SimEventType::kTimer, db, rt.generation);
    }
  }

  void RecordEvent(EpochSeconds time, DbId db, EventKind kind) {
    recorder_->Record(time, db_offset_ + db, kind);
  }

  void SetPhase(DbId db, Phase phase, EpochSeconds time) {
    bool was_allocated = current_phase_[db] != Phase::kReclaimed &&
                         phase_known_[db];
    bool is_allocated = phase != Phase::kReclaimed;
    if (is_allocated && !was_allocated) ++allocated_now_;
    if (!is_allocated && was_allocated) --allocated_now_;
    phase_known_[db] = true;
    ledger_->SetPhase(db, phase, time);
    current_phase_[db] = phase;
  }

  /// Lifecycle transition hook: metadata store, telemetry, ledger phases,
  /// eviction scheduling, reactive-resume latency.
  void OnTransition(DbId db, const policy::TransitionEvent& e);

  /// Home node of a database (fleet-global id modulo the node count).
  size_t NodeOf(DbId db) const {
    return static_cast<size_t>(db_offset_ + db) %
           static_cast<size_t>(std::max(1, options_.num_nodes));
  }

  Status HandleDbCreated(const SimEvent& ev);
  Status HandleSessionStart(const SimEvent& ev);
  Status HandleSessionEnd(const SimEvent& ev);
  Status HandleTimer(const SimEvent& ev);
  Status HandleResumeOpTick(const SimEvent& ev);
  Status HandleScrubTick(const SimEvent& ev);
  Status HandleEviction(const SimEvent& ev);
  Status HandleResumeLatencyDone(const SimEvent& ev);
  void HandleMeasureStart(const SimEvent& ev);
  Status HandlePumpTick(const SimEvent& ev);
  Status HandleMaintenanceTick(const SimEvent& ev);
  Status HandleControlPlaneCrash(const SimEvent& ev);

  /// The node-side resume executor shared by the legacy and durable
  /// control planes.  Failure draws come from the member RNG so the
  /// stream continues across a simulated control-plane restart.
  controlplane::ManagementService::ResumeCallback MakeResumeCallback();

  /// The resume callback handed to the control plane: the node executor
  /// directly (legacy), or a hop through the message transport when
  /// options_.use_transport is set.
  controlplane::ManagementService::ResumeCallback MakeServiceCallback();

  /// Repoints the transport stack at the current service incarnation
  /// (after construction and after every crash/recovery).  No-op when the
  /// transport is disabled.
  void SyncTransportToService();

  /// Opens (or, after a crash, recovers) the durable control plane and
  /// repoints metadata_/management_ at its components.
  Status OpenDurableControlPlane(EpochSeconds now);

  const workload::DbTrace* traces_;
  size_t num_traces_;
  SimOptions options_;
  DbId db_offset_;
  Rng rng_;

  std::priority_queue<SimEvent, std::vector<SimEvent>, std::greater<>>
      queue_;
  uint64_t seq_ = 0;

  OutageSchedule outages_;
  telemetry::RobustnessReport robustness_;
  /// Storm layer (null when disabled): finite per-node resume capacity.
  std::unique_ptr<NodeCapacityModel> capacity_;
  /// Reactive login-to-resources delays inside the measurement window.
  Summary login_delay_;
  /// Round-robin cursor of the maintenance sweep.
  DbId maint_cursor_ = 0;
  std::vector<DbRuntime> dbs_;
  std::vector<Phase> current_phase_;
  std::vector<bool> phase_known_;
  int64_t allocated_now_ = 0;
  Summary allocated_samples_;
  std::unique_ptr<forecast::FastPredictor> predictor_;
  /// The control plane behind `metadata_`/`management_` is either owned
  /// directly (legacy in-memory mode) or lives inside `plane_` (durable
  /// journaled mode); all handlers go through the raw pointers so a
  /// mid-run recovery only has to swap what they point at.
  std::unique_ptr<MetadataStore> owned_metadata_;
  std::unique_ptr<controlplane::ManagementService> owned_management_;
  std::unique_ptr<controlplane::DurableControlPlane> plane_;
  MetadataStore* metadata_ = nullptr;
  controlplane::ManagementService* management_ = nullptr;
  /// Message transport between the service and the node executor
  /// (options_.use_transport).  Fault-free and inline, so every dispatch
  /// resolves synchronously; the stack outlives control-plane recoveries
  /// and is re-pointed at each new incarnation.
  std::unique_ptr<net::InProcessTransport> transport_;
  std::unique_ptr<net::NodeAgent> agent_;
  std::unique_ptr<net::TransportDispatcher> dispatcher_;
  Rng failure_rng_{0};
  uint64_t cp_recoveries_ = 0;
  uint64_t cp_last_replayed_ = 0;
  std::unique_ptr<telemetry::UsageLedger> ledger_;
  std::unique_ptr<telemetry::Recorder> recorder_;
};

void FleetSimulation::OnTransition(DbId db,
                                   const policy::TransitionEvent& e) {
  DbRuntime& rt = dbs_[db];
  ++rt.generation;
  // Algorithm 1 line 31: persist the predicted start in the metadata
  // store when physically pausing (0 when no prediction).
  (void)metadata_->UpsertState(db, e.to, e.prediction.start);

  switch (e.to) {
    case DbState::kResumed:
      // Login events themselves are recorded in HandleSessionStart (one
      // per first-login-after-idle); here only phases are tracked.
      if (e.cause == TransitionCause::kReactiveResume) {
        // Resources take resume_latency to come back; the customer waits.
        SetPhase(db, Phase::kUnavailable, e.time);
        if (options_.storm_layer_enabled()) {
          // The reactive resume routes through the control plane's
          // multi-class queue and the finite node capacity: the delay is
          // base service time plus whatever congestion the node has.
          rt.reactive_login_at = e.time;
          rt.reactive_login_gen = rt.generation;
          (void)management_->EnqueueReactive(db, e.time);
          (void)management_->Pump(e.time);
        } else {
          Push(e.time + options_.resume_latency,
               SimEventType::kResumeLatencyDone, db, rt.generation);
        }
      } else {
        SetPhase(db, Phase::kActive, e.time);
      }
      break;
    case DbState::kLogicallyPaused:
      if (e.cause == TransitionCause::kProactiveResume) {
        RecordEvent(e.time, db, EventKind::kProactiveResume);
        SetPhase(db, Phase::kIdleProactive, e.time);
      } else {
        RecordEvent(e.time, db, EventKind::kLogicalPause);
        SetPhase(db, Phase::kIdleLogical, e.time);
      }
      if (options_.eviction_per_hour > 0) {
        double mean_seconds = 3600.0 / options_.eviction_per_hour;
        EpochSeconds at =
            e.time + static_cast<DurationSeconds>(
                         rt.eviction_rng.NextExponential(mean_seconds));
        if (at < options_.end) {
          Push(at, SimEventType::kEviction, db, rt.generation);
        }
      }
      break;
    case DbState::kPhysicallyPaused:
      RecordEvent(e.time, db, EventKind::kPhysicalPause);
      if (e.cause == TransitionCause::kForcedEviction) {
        RecordEvent(e.time, db, EventKind::kForcedEviction);
      }
      SetPhase(db, Phase::kReclaimed, e.time);
      break;
  }
}

Status FleetSimulation::HandleDbCreated(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  if (static_cast<uint64_t>(db_offset_ + ev.db) <
      options_.sql_history_count) {
    // The real SQL stack (ephemeral: no on-disk directory per simulated
    // database, but the full B+tree/buffer-pool/checksum path runs).
    PRORP_ASSIGN_OR_RETURN(auto sql_store, history::SqlHistoryStore::Open());
    rt.sql_history = sql_store.get();
    rt.history = std::move(sql_store);
  } else {
    rt.history = std::make_unique<MemHistoryStore>();
  }
  rt.eviction_rng.Seed(options_.seed ^
                       (0x9E3779B97F4A7C15ULL *
                        (static_cast<uint64_t>(db_offset_ + ev.db) + 1)));
  const forecast::Predictor* predictor =
      options_.mode == PolicyMode::kProactive ? predictor_.get() : nullptr;
  DbId db = ev.db;
  rt.controller = std::make_unique<LifecycleController>(
      options_.config.policy, options_.mode, rt.history.get(), predictor,
      ev.time, [this, db](const policy::TransitionEvent& e) {
        OnTransition(db, e);
      });
  PRORP_RETURN_IF_ERROR(metadata_->UpsertState(db, DbState::kResumed, 0));
  // A creation login is not a "first login after an idle interval", so it
  // does not enter the QoS statistics.
  SetPhase(db, Phase::kActive, ev.time);
  // The creation login is session 0; its end is the next event.
  Push(rt.trace->sessions[0].end, SimEventType::kSessionEnd, db, 0);
  return Status::OK();
}

Status FleetSimulation::HandleSessionStart(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  PRORP_ASSIGN_OR_RETURN(policy::LoginOutcome outcome,
                         rt.controller->OnActivityStart(ev.time));
  if (outcome == policy::LoginOutcome::kReactiveResume) {
    RecordEvent(ev.time, ev.db, EventKind::kLoginReactive);
  } else if (outcome == policy::LoginOutcome::kResourcesAvailable) {
    RecordEvent(ev.time, ev.db, EventKind::kLoginAvailable);
    if (options_.mode == PolicyMode::kAlwaysOn) {
      SetPhase(ev.db, Phase::kActive, ev.time);  // no FSM transition fires
    }
  }
  SyncTimer(ev.db);
  Push(rt.trace->sessions[ev.aux].end, SimEventType::kSessionEnd, ev.db,
       ev.aux);
  return Status::OK();
}

Status FleetSimulation::HandleSessionEnd(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  PRORP_RETURN_IF_ERROR(rt.controller->OnActivityEnd(ev.time));
  RecordEvent(ev.time, ev.db, EventKind::kLogout);
  if (options_.mode == PolicyMode::kAlwaysOn) {
    // Resources stay allocated; the idle time is plain logical-pause idle.
    SetPhase(ev.db, Phase::kIdleLogical, ev.time);
  }
  SyncTimer(ev.db);
  size_t next = static_cast<size_t>(ev.aux) + 1;
  if (next < rt.trace->sessions.size()) {
    Push(rt.trace->sessions[next].start, SimEventType::kSessionStart, ev.db,
         next);
  }
  return Status::OK();
}

Status FleetSimulation::HandleTimer(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  if (rt.controller == nullptr) return Status::OK();
  if (rt.scheduled_timer != ev.time || rt.scheduled_timer_gen != ev.aux) {
    return Status::OK();  // superseded or cancelled: this event is stale
  }
  rt.scheduled_timer = 0;  // this event is consumed either way
  if (rt.controller->NextTimerAt() == ev.time) {
    PRORP_RETURN_IF_ERROR(rt.controller->OnTimerCheck(ev.time));
  }
  SyncTimer(ev.db);
  return Status::OK();
}

Status FleetSimulation::HandleResumeOpTick(const SimEvent& ev) {
  PRORP_RETURN_IF_ERROR(
      management_->RunOnce(ev.time, options_.use_sql_scan_for_resume_op)
          .status());
  if (plane_ != nullptr) PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
  EpochSeconds next =
      ev.time + options_.config.control_plane.resume_operation_period;
  if (next < options_.end) Push(next, SimEventType::kResumeOpTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleScrubTick(const SimEvent& ev) {
  for (DbRuntime& rt : dbs_) {
    if (rt.sql_history == nullptr || rt.sql_history->quarantined()) continue;
    // A scrub failure must not kill the run: a dirty store repairs or
    // quarantines itself, and the integrity counters record the outcome.
    (void)rt.sql_history->Scrub();
  }
  EpochSeconds next = ev.time + options_.scrub_interval;
  if (next < options_.end) Push(next, SimEventType::kScrubTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleEviction(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  if (rt.controller == nullptr || rt.generation != ev.aux) {
    return Status::OK();  // the pause this hazard was drawn for is over
  }
  if (rt.controller->state() != DbState::kLogicallyPaused ||
      rt.controller->active()) {
    return Status::OK();
  }
  PRORP_RETURN_IF_ERROR(rt.controller->OnForcedEviction(ev.time));
  SyncTimer(ev.db);
  return Status::OK();
}

Status FleetSimulation::HandleResumeLatencyDone(const SimEvent& ev) {
  DbRuntime& rt = dbs_[ev.db];
  if (rt.controller == nullptr) return Status::OK();
  if (options_.storm_layer_enabled() && rt.reactive_login_at > 0 &&
      ev.aux == rt.reactive_login_gen) {
    // First completion (original or hedge) wins; later ones fall through
    // to the generation check below and are dropped as stale.
    management_->CompleteWorkflow(ev.db, ev.time);
    if (rt.reactive_login_at >= options_.measure_from) {
      login_delay_.Add(static_cast<double>(ev.time - rt.reactive_login_at));
    }
    rt.reactive_login_at = 0;
  }
  if (rt.generation != ev.aux) return Status::OK();
  if (rt.controller->active() &&
      current_phase_[ev.db] == Phase::kUnavailable) {
    SetPhase(ev.db, Phase::kActive, ev.time);
  }
  return Status::OK();
}

Status FleetSimulation::HandlePumpTick(const SimEvent& ev) {
  // Reactive work arriving between proactive iterations must not wait for
  // the next RunOnce: drain the reactive class and run the watchdog.
  (void)management_->Pump(ev.time);
  if (plane_ != nullptr) PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
  EpochSeconds next =
      ev.time + options_.config.control_plane.resume_operation_period;
  if (next < options_.end) Push(next, SimEventType::kPumpTick, 0, 0);
  return Status::OK();
}

Status FleetSimulation::HandleMaintenanceTick(const SimEvent& ev) {
  // Enqueue up to maintenance_batch physically paused idle databases as
  // lowest-class touches, round-robin over the fleet slice.
  size_t enqueued = 0;
  for (size_t scanned = 0;
       scanned < dbs_.size() && enqueued < options_.maintenance_batch;
       ++scanned) {
    DbId db = maint_cursor_;
    maint_cursor_ = (maint_cursor_ + 1) % dbs_.size();
    DbRuntime& rt = dbs_[db];
    if (rt.controller == nullptr ||
        rt.controller->state() != DbState::kPhysicallyPaused) {
      continue;
    }
    if (management_->EnqueueMaintenance(db, ev.time).ok()) ++enqueued;
  }
  EpochSeconds next = ev.time + options_.maintenance_interval;
  if (next < options_.end) Push(next, SimEventType::kMaintenanceTick, 0, 0);
  return Status::OK();
}

void FleetSimulation::HandleMeasureStart(const SimEvent& ev) {
  // Swap in a fresh ledger/recorder seeded with the current phases: the
  // warm-up period does not count toward the KPIs.
  auto fresh = std::make_unique<telemetry::UsageLedger>(dbs_.size(),
                                                        ev.time);
  for (DbId db = 0; db < dbs_.size(); ++db) {
    if (dbs_[db].controller != nullptr) {
      fresh->SetPhase(db, current_phase_[db], ev.time);
    }
  }
  ledger_ = std::move(fresh);
  recorder_ = std::make_unique<telemetry::Recorder>();
}

controlplane::ManagementService::ResumeCallback
FleetSimulation::MakeResumeCallback() {
  return [this](const controlplane::ResumeAttempt& a,
                EpochSeconds now) -> Status {
        size_t node = NodeOf(a.db);
        if (a.node_offset != 0) {
          // Hedge: route to a different (least-loaded) node.
          node = capacity_ != nullptr
                     ? capacity_->LeastLoadedOther(node, now)
                     : (node + static_cast<size_t>(a.node_offset)) %
                           static_cast<size_t>(
                               std::max(1, options_.num_nodes));
        }
        if (a.cls == controlplane::ResumeClass::kReactiveLogin) {
          // The customer's connection retry loop rides out outages and
          // congestion: the workflow never fails, it just takes longer.
          DbRuntime& rt = dbs_[a.db];
          if (rt.controller == nullptr || rt.reactive_login_at == 0 ||
              current_phase_[a.db] != Phase::kUnavailable) {
            return Status::FailedPrecondition("login no longer waiting");
          }
          EpochSeconds blocked_until =
              outages_.enabled() ? outages_.DownUntil(node, now) : 0;
          NodeCapacityModel::Grant g = capacity_->Acquire(
              node, now, common::JitterHash(a.db, a.attempt), blocked_until,
              /*limited=*/false);
          Push(g.done, SimEventType::kResumeLatencyDone, a.db,
               rt.reactive_login_gen);
          return Status::OK();
        }
        if (outages_.enabled() && outages_.DownAt(node, now)) {
          ++robustness_.resume_failures_outage;
          return Status::Unavailable("node outage");
        }
        if (a.cls == controlplane::ResumeClass::kMaintenance) {
          DbRuntime& rt = dbs_[a.db];
          if (rt.controller == nullptr) {
            return Status::FailedPrecondition("database not yet created");
          }
          Status s = rt.controller->OnMaintenanceTouch(now);
          if (s.ok() && capacity_ != nullptr) {
            (void)capacity_->Acquire(node, now,
                                     common::JitterHash(a.db, a.attempt), 0);
          }
          return s;
        }
        if (options_.resume_failure_probability > 0 &&
            failure_rng_.NextBool(options_.resume_failure_probability)) {
          ++robustness_.resume_failures_injected;
          return Status::Unavailable("injected workflow failure");
        }
        DbRuntime& rt = dbs_[a.db];
        if (rt.controller == nullptr) {
          return Status::FailedPrecondition("database not yet created");
        }
        Status s = rt.controller->OnProactiveResume(now);
        if (s.ok()) {
          SyncTimer(a.db);
          if (capacity_ != nullptr) {
            // Pre-warms consume node capacity too — this is exactly the
            // coupling a naive post-outage catch-up abuses.
            (void)capacity_->Acquire(node, now,
                                     common::JitterHash(a.db, a.attempt), 0);
          }
        }
        return s;
  };
}

controlplane::ManagementService::ResumeCallback
FleetSimulation::MakeServiceCallback() {
  if (!options_.use_transport) return MakeResumeCallback();
  if (dispatcher_ == nullptr) {
    // One dispatcher on the plane side, one agent standing in for the
    // whole node fleet: per-node routing stays inside the executor (the
    // callback above picks the node from the attempt), so a single
    // endpoint preserves bit-identity with the direct-call run.
    transport_ = std::make_unique<net::InProcessTransport>();
    dispatcher_ = std::make_unique<net::TransportDispatcher>(
        transport_.get(), net::TransportDispatcher::Options{});
    agent_ = std::make_unique<net::NodeAgent>(
        /*id=*/1, transport_.get(), MakeResumeCallback());
  }
  return [this](const controlplane::ResumeAttempt& a,
                EpochSeconds now) -> Status {
    return dispatcher_->DispatchResume(a, now);
  };
}

void FleetSimulation::SyncTransportToService() {
  if (dispatcher_ == nullptr) return;
  dispatcher_->set_service(management_);
  // Fence the node against the dead incarnation's stragglers before the
  // new one dispatches anything (inline transport has none; the call
  // keeps the recovery contract explicit).
  agent_->FenceEpoch(management_->epoch());
}

Status FleetSimulation::OpenDurableControlPlane(EpochSeconds now) {
  controlplane::DurableControlPlane::Options cp;
  cp.dir = options_.control_plane_journal_dir;
  cp.config = options_.config.control_plane;
  cp.sync_mode = controlplane::ControlPlaneJournal::SyncMode::kBuffered;
  cp.checkpoint_every = options_.control_plane_checkpoint_every;
  PRORP_ASSIGN_OR_RETURN(
      plane_, controlplane::DurableControlPlane::Open(
                  cp, MakeServiceCallback(),
                  [this](DbId db) {
                    // Reconcile oracle: the node holds the resumed
                    // resources iff the database's lifecycle FSM is not
                    // physically paused.
                    DbRuntime& rt = dbs_[db];
                    return rt.controller != nullptr &&
                           rt.controller->state() !=
                               DbState::kPhysicallyPaused;
                  },
                  now));
  metadata_ = &plane_->metadata();
  management_ = &plane_->service();
  SyncTransportToService();
  cp_last_replayed_ = plane_->recovery_stats().replayed;
  return Status::OK();
}

Status FleetSimulation::HandleControlPlaneCrash(const SimEvent& ev) {
  // Simulated control-plane process death at an event boundary: the
  // in-memory plane is destroyed — queue contents, breaker state and
  // accounting survive only through journal + checkpoint — and recovery
  // reopens the directory under a fresh epoch.  Node-side work already
  // granted (pending kResumeLatencyDone events) is unaffected;
  // dispatched-but-unacked workflows reconcile against the lifecycle
  // FSMs through the oracle above.
  plane_.reset();
  metadata_ = nullptr;
  management_ = nullptr;
  PRORP_RETURN_IF_ERROR(OpenDurableControlPlane(ev.time));
  ++cp_recoveries_;
  return Status::OK();
}

Result<SimReport> FleetSimulation::Run() {
  PRORP_RETURN_IF_ERROR(options_.config.Validate());
  if (options_.end <= 0) {
    return Status::InvalidArgument("SimOptions.end is required");
  }
  if (options_.control_plane_crash_at > 0 &&
      options_.control_plane_journal_dir.empty()) {
    return Status::InvalidArgument(
        "control_plane_crash_at requires control_plane_journal_dir");
  }
  size_t n = num_traces_;
  dbs_.resize(n);
  current_phase_.assign(n, Phase::kReclaimed);
  phase_known_.assign(n, false);
  predictor_ = std::make_unique<forecast::FastPredictor>(
      options_.config.policy.prediction);

  outages_ = OutageSchedule::Build(options_);
  robustness_.outage_windows = outages_.windows();
  robustness_.outage_seconds = outages_.seconds();

  if (options_.storm_layer_enabled()) {
    CapacityOptions cap;
    cap.num_nodes = static_cast<size_t>(std::max(1, options_.num_nodes));
    cap.concurrency_per_node = options_.resume_concurrency_per_node;
    cap.service_time = options_.resume_latency;
    cap.admission_rate = options_.node_admission_rate;
    cap.admission_burst = options_.node_admission_burst;
    cap.queue_jitter_max = options_.resume_queue_jitter_max;
    cap.seed = options_.seed;
    capacity_ = std::make_unique<NodeCapacityModel>(cap);
  }

  failure_rng_ = rng_.Fork();
  if (!options_.control_plane_journal_dir.empty()) {
    PRORP_RETURN_IF_ERROR(OpenDurableControlPlane(/*now=*/0));
  } else {
    PRORP_ASSIGN_OR_RETURN(owned_metadata_, MetadataStore::Open());
    metadata_ = owned_metadata_.get();
    owned_management_ = std::make_unique<controlplane::ManagementService>(
        metadata_, options_.config.control_plane, MakeServiceCallback());
    management_ = owned_management_.get();
    SyncTransportToService();
  }

  EpochSeconds measure_from = options_.measure_from;
  ledger_ = std::make_unique<telemetry::UsageLedger>(
      n, measure_from > 0 ? measure_from : 0);
  recorder_ = std::make_unique<telemetry::Recorder>();

  for (DbId db = 0; db < n; ++db) {
    dbs_[db].trace = &traces_[db];
    if (!traces_[db].sessions.empty() &&
        traces_[db].sessions[0].start < options_.end) {
      Push(traces_[db].sessions[0].start, SimEventType::kDbCreated, db, 0);
    }
  }
  EpochSeconds earliest_start = options_.end;
  for (size_t i = 0; i < num_traces_; ++i) {
    if (!traces_[i].sessions.empty()) {
      earliest_start = std::min(earliest_start, traces_[i].sessions[0].start);
    }
  }
  if (options_.mode == PolicyMode::kProactive &&
      options_.proactive_resume_enabled) {
    // The operation starts with the earliest database; earlier ticks
    // would only scan an empty metadata store.
    if (earliest_start + 1 < options_.end) {
      Push(earliest_start + 1, SimEventType::kResumeOpTick, 0, 0);
    }
  } else if (options_.storm_layer_enabled()) {
    // No RunOnce iterations: the pump tick keeps the reactive drain and
    // the deadline watchdog running between logins.
    if (earliest_start + 1 < options_.end) {
      Push(earliest_start + 1, SimEventType::kPumpTick, 0, 0);
    }
  }
  if (options_.storm_layer_enabled() &&
      options_.maintenance_interval > 0 && options_.maintenance_batch > 0 &&
      options_.mode == PolicyMode::kProactive) {
    EpochSeconds first = earliest_start + options_.maintenance_interval;
    if (first < options_.end) {
      Push(first, SimEventType::kMaintenanceTick, 0, 0);
    }
  }
  if (options_.scrub_interval > 0 && options_.sql_history_count > 0) {
    // Anchored to the earliest database: earlier ticks have nothing to
    // scrub.
    EpochSeconds first_scrub = earliest_start + options_.scrub_interval;
    if (first_scrub < options_.end) {
      Push(first_scrub, SimEventType::kScrubTick, 0, 0);
    }
  }
  if (options_.control_plane_crash_at > 0 &&
      options_.control_plane_crash_at < options_.end) {
    Push(options_.control_plane_crash_at, SimEventType::kControlPlaneCrash,
         0, 0);
  }
  if (measure_from > 0) {
    Push(measure_from, SimEventType::kMeasureStart, 0, 0);
  }
  Push(measure_from > 0 ? measure_from : options_.end - 1,
       SimEventType::kAllocationSample, 0, 0);

  while (!queue_.empty()) {
    SimEvent ev = queue_.top();
    queue_.pop();
    if (ev.time >= options_.end) break;
    switch (ev.type) {
      case SimEventType::kDbCreated:
        PRORP_RETURN_IF_ERROR(HandleDbCreated(ev));
        break;
      case SimEventType::kSessionStart:
        PRORP_RETURN_IF_ERROR(HandleSessionStart(ev));
        break;
      case SimEventType::kSessionEnd:
        PRORP_RETURN_IF_ERROR(HandleSessionEnd(ev));
        break;
      case SimEventType::kTimer:
        PRORP_RETURN_IF_ERROR(HandleTimer(ev));
        break;
      case SimEventType::kResumeOpTick:
        PRORP_RETURN_IF_ERROR(HandleResumeOpTick(ev));
        break;
      case SimEventType::kScrubTick:
        PRORP_RETURN_IF_ERROR(HandleScrubTick(ev));
        break;
      case SimEventType::kEviction:
        PRORP_RETURN_IF_ERROR(HandleEviction(ev));
        break;
      case SimEventType::kResumeLatencyDone:
        PRORP_RETURN_IF_ERROR(HandleResumeLatencyDone(ev));
        break;
      case SimEventType::kMeasureStart:
        HandleMeasureStart(ev);
        break;
      case SimEventType::kPumpTick:
        PRORP_RETURN_IF_ERROR(HandlePumpTick(ev));
        break;
      case SimEventType::kMaintenanceTick:
        PRORP_RETURN_IF_ERROR(HandleMaintenanceTick(ev));
        break;
      case SimEventType::kControlPlaneCrash:
        PRORP_RETURN_IF_ERROR(HandleControlPlaneCrash(ev));
        break;
      case SimEventType::kAllocationSample: {
        allocated_samples_.Add(static_cast<double>(allocated_now_));
        EpochSeconds next_sample = ev.time + Minutes(5);
        if (next_sample < options_.end) {
          Push(next_sample, SimEventType::kAllocationSample, 0, 0);
        }
        break;
      }
    }
  }
  ledger_->Finish(options_.end);

  SimReport report;
  report.usage = ledger_->fleet_total();
  report.kpi = telemetry::ComputeKpi(*recorder_, report.usage);
  // Predictions are counted inside the controllers (the event stream only
  // carries lifecycle transitions).
  for (const DbRuntime& rt : dbs_) {
    if (rt.controller != nullptr) {
      report.kpi.predictions += rt.controller->stats().predictions_made;
      robustness_.degraded_enters += rt.controller->stats().degraded_enters;
      robustness_.degraded_exits += rt.controller->stats().degraded_exits;
      robustness_.history_errors += rt.controller->stats().history_errors;
      robustness_.corruption_errors +=
          rt.controller->stats().corruption_errors;
      robustness_.maintenance_touches +=
          rt.controller->stats().maintenance_touches;
    }
    if (rt.sql_history != nullptr) {
      const storage::IntegrityStats& is = rt.sql_history->integrity_stats();
      robustness_.corruption_detected += is.corruption_detected;
      robustness_.corruption_repaired += is.corruption_repaired;
      robustness_.corruption_quarantined += is.corruption_quarantined;
      robustness_.scrub_passes += is.scrub_passes;
      robustness_.scrub_pages += is.scrub_pages;
      robustness_.scrub_errors += is.scrub_errors;
    }
  }
  report.recorder = std::move(*recorder_);
  report.diagnostics = management_->diagnostics();
  report.robustness = robustness_;
  report.pending_failed = management_->pending_failed();
  report.resumed_per_iteration = management_->resumed_per_iteration();
  report.login_delay = login_delay_;
  if (capacity_ != nullptr) report.resume_waits = capacity_->waits();
  report.control_plane_recoveries = cp_recoveries_;
  report.control_plane_replayed = cp_last_replayed_;
  report.measure_from = measure_from;
  report.measure_end = options_.end;
  report.allocated_samples = allocated_samples_;
  for (DbId db = 0; db < n; ++db) {
    if (dbs_[db].history != nullptr) {
      report.history_tuples.Add(
          static_cast<double>(dbs_[db].history->NumTuples()));
      report.history_bytes.Add(
          static_cast<double>(dbs_[db].history->SizeBytes()));
    }
  }
  return report;
}

/// Merges per-shard reports into the report a whole-fleet serial run
/// would have produced.  Everything a KPI is computed from is a sum
/// (event counts, integer-second phase durations), so the merge is
/// exact, not approximate.
SimReport MergeShardReports(std::vector<SimReport> shards) {
  SimReport merged;
  merged.measure_from = shards.front().measure_from;
  merged.measure_end = shards.front().measure_end;

  std::vector<telemetry::FleetEvent> events;
  std::vector<double> allocated_sums;
  uint64_t predictions = 0;
  for (SimReport& s : shards) {
    merged.usage += s.usage;
    predictions += s.kpi.predictions;
    events.insert(events.end(), s.recorder.events().begin(),
                  s.recorder.events().end());
    merged.resumed_per_iteration.Merge(s.resumed_per_iteration);
    merged.history_tuples.Merge(s.history_tuples);
    merged.history_bytes.Merge(s.history_bytes);
    // Every shard samples on the same 5-minute schedule, so the fleet's
    // concurrent-allocation census is the element-wise sum.
    const std::vector<double>& samples = s.allocated_samples.values();
    if (allocated_sums.size() < samples.size()) {
      allocated_sums.resize(samples.size(), 0);
    }
    for (size_t i = 0; i < samples.size(); ++i) {
      allocated_sums[i] += samples[i];
    }
    merged.diagnostics.observed_iterations +=
        s.diagnostics.observed_iterations;
    merged.diagnostics.max_queue_depth = std::max(
        merged.diagnostics.max_queue_depth, s.diagnostics.max_queue_depth);
    merged.diagnostics.stuck_workflows += s.diagnostics.stuck_workflows;
    merged.diagnostics.mitigated += s.diagnostics.mitigated;
    merged.diagnostics.skipped_state_changed +=
        s.diagnostics.skipped_state_changed;
    merged.diagnostics.failed_then_skipped +=
        s.diagnostics.failed_then_skipped;
    merged.diagnostics.failed_then_shed += s.diagnostics.failed_then_shed;
    merged.diagnostics.incidents += s.diagnostics.incidents;
    merged.diagnostics.backoff_retries_scheduled +=
        s.diagnostics.backoff_retries_scheduled;
    merged.diagnostics.backoff_delay_seconds_total +=
        s.diagnostics.backoff_delay_seconds_total;
    merged.diagnostics.shed_resumes += s.diagnostics.shed_resumes;
    merged.diagnostics.breaker_opens += s.diagnostics.breaker_opens;
    merged.diagnostics.breaker_state_changes +=
        s.diagnostics.breaker_state_changes;
    for (size_t c = 0; c < controlplane::kNumResumeClasses; ++c) {
      controlplane::ClassDiagnostics& m = merged.diagnostics.per_class[c];
      const controlplane::ClassDiagnostics& v = s.diagnostics.per_class[c];
      m.enqueued += v.enqueued;
      m.resumed += v.resumed;
      m.shed_admission += v.shed_admission;
      m.shed_evicted += v.shed_evicted;
      m.stuck += v.stuck;
      m.mitigated += v.mitigated;
      m.incidents += v.incidents;
      m.skipped_state_changed += v.skipped_state_changed;
      m.failed_then_skipped += v.failed_then_skipped;
      m.failed_then_shed += v.failed_then_shed;
      m.deadline_breaches += v.deadline_breaches;
      m.hedged += v.hedged;
      m.hedge_wins += v.hedge_wins;
    }
    merged.diagnostics.storms_detected += s.diagnostics.storms_detected;
    merged.diagnostics.slow_start_ticks += s.diagnostics.slow_start_ticks;
    merged.diagnostics.quota_deferrals += s.diagnostics.quota_deferrals;
    merged.diagnostics.catch_up_enqueued += s.diagnostics.catch_up_enqueued;
    merged.diagnostics.deleted_while_queued +=
        s.diagnostics.deleted_while_queued;
    merged.diagnostics.unacked_dispatches += s.diagnostics.unacked_dispatches;
    merged.diagnostics.dispatch_timeouts += s.diagnostics.dispatch_timeouts;
    merged.diagnostics.late_acks += s.diagnostics.late_acks;
    merged.diagnostics.stale_epoch_acks += s.diagnostics.stale_epoch_acks;
    merged.diagnostics.max_brownout_level =
        std::max(merged.diagnostics.max_brownout_level,
                 s.diagnostics.max_brownout_level);
    merged.diagnostics.queue_wait.Merge(s.diagnostics.queue_wait);
    merged.diagnostics.in_flight_duration.Merge(
        s.diagnostics.in_flight_duration);
    merged.login_delay.Merge(s.login_delay);
    merged.resume_waits.Merge(s.resume_waits);
    merged.pending_failed += s.pending_failed;
    merged.control_plane_recoveries += s.control_plane_recoveries;
    merged.control_plane_replayed += s.control_plane_replayed;
    merged.robustness.AccumulateShard(s.robustness);
  }
  // The outage schedule is fleet-global and identical in every shard.
  merged.robustness.outage_windows = shards.front().robustness.outage_windows;
  merged.robustness.outage_seconds = shards.front().robustness.outage_seconds;
  merged.allocated_samples.AddAll(allocated_sums);
  // Restore global time order (shard concatenation is db-grouped).  All
  // KPI consumers are order-independent; this is for readable exports.
  std::stable_sort(events.begin(), events.end(),
                   [](const telemetry::FleetEvent& a,
                      const telemetry::FleetEvent& b) {
                     return a.time < b.time;
                   });
  for (const telemetry::FleetEvent& e : events) {
    merged.recorder.Record(e.time, e.db, e.kind);
  }
  merged.kpi = telemetry::ComputeKpi(merged.recorder, merged.usage);
  merged.kpi.predictions = predictions;
  return merged;
}

}  // namespace

Result<SimReport> RunFleetSimulation(
    const std::vector<workload::DbTrace>& traces,
    const SimOptions& options) {
  size_t num_shards =
      options.num_threads > 1
          ? std::min<size_t>(static_cast<size_t>(options.num_threads),
                             traces.size())
          : 1;
  // Proactive mode couples databases through the shared metadata store
  // and management service, the storm layer couples them through the
  // shared node capacity, the durable control plane couples them through
  // one journal directory, and the message transport couples them through
  // one dispatcher; all run as one event loop.
  if (options.mode == PolicyMode::kProactive || num_shards <= 1 ||
      options.storm_layer_enabled() ||
      !options.control_plane_journal_dir.empty() || options.use_transport) {
    FleetSimulation simulation(traces.data(), traces.size(), options, 0);
    return simulation.Run();
  }

  std::vector<std::function<Result<SimReport>()>> jobs;
  jobs.reserve(num_shards);
  size_t base = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    size_t count = traces.size() / num_shards +
                   (shard < traces.size() % num_shards ? 1 : 0);
    const workload::DbTrace* begin = traces.data() + base;
    DbId offset = static_cast<DbId>(base);
    jobs.emplace_back([begin, count, offset, &options] {
      FleetSimulation simulation(begin, count, options, offset);
      return simulation.Run();
    });
    base += count;
  }
  std::vector<Result<SimReport>> results =
      common::RunOnPool<Result<SimReport>>(std::move(jobs), num_shards);
  std::vector<SimReport> shards;
  shards.reserve(results.size());
  for (Result<SimReport>& r : results) {
    PRORP_RETURN_IF_ERROR(r.status());
    shards.push_back(std::move(r.value()));
  }
  return MergeShardReports(std::move(shards));
}

}  // namespace prorp::sim
