#ifndef PRORP_SIM_TIMER_WHEEL_H_
#define PRORP_SIM_TIMER_WHEEL_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace prorp::sim {

/// Hierarchical timer wheel over a 1-second virtual-time tick, the
/// replacement for the fleet simulator's global binary event heap.
///
/// Three levels of 2048 slots each with power-of-two widths (1 s, 2048 s
/// ~ 34 min, 2048^2 s ~ 48.5 days) cover horizons up to 2048^3 s
/// (~272 years); anything farther sits in an overflow vector that is
/// re-bucketed once its earliest deadline comes within range.  An event
/// lands in the shallowest level whose span covers its delay and is
/// indexed by its absolute time, so a slot of level L holds exactly the
/// events of one aligned 2048^L-second window.  Per-level occupancy
/// bitmaps (32 x uint64 words) make "find the next non-empty slot" a
/// circular countr_zero scan instead of a walk.
///
/// Push is O(1); PopNextTick jumps `now` straight to the next occupied
/// slot (no per-empty-tick work, which matters when a paused fleet sleeps
/// for hours of virtual time) and cascades at most one upper-level slot
/// per call, so amortized cost per event is O(levels).
///
/// Determinism contract (what makes wheel runs bit-identical to the
/// legacy heap): the heap pops events in strict (time, seq) order, seq
/// being the global push counter.  The wheel reproduces that order
/// because (a) PopNextTick always drains the globally earliest pending
/// time, (b) a drained slot is sorted by seq before being handed out, and
/// (c) an upper-level slot whose window STARTS at the next L0 deadline is
/// cascaded before that L0 slot is drained, so same-time events split
/// across levels are reunited in one slot before the seq sort.  See
/// DESIGN.md section 13 for the full argument.
///
/// `Event` must expose `int64_t time` and a unique, monotonically
/// assigned `uint64_t seq`.
template <typename Event>
class TimerWheel {
 public:
  TimerWheel() = default;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  int64_t now() const { return now_; }

  /// Inserts an event.  Times at or before `now()` are legal (they park
  /// in an overdue bucket drained ahead of everything else); times before
  /// the initial epoch 0 are not supported.
  void Push(const Event& e) {
    ++size_;
    int64_t delta = e.time - now_;
    if (delta <= 0) {
      overdue_.push_back(e);
      return;
    }
    PlaceFuture(e);
  }

  /// Moves every event of the earliest pending tick into `*out`
  /// (appended, ascending seq) and advances `now()` to that tick.
  /// Returns false when the wheel is empty.  If overdue events exist
  /// (pushed at/before `now()`), they are all delivered first in
  /// (time, seq) order without advancing `now()`.
  bool PopNextTick(std::vector<Event>* out) {
    if (size_ == 0) return false;
    for (;;) {
      // An overflow flush can surface events due exactly at `now_` into
      // the overdue bucket, so this check lives inside the loop.
      if (!overdue_.empty()) {
        std::sort(overdue_.begin(), overdue_.end(),
                  [](const Event& a, const Event& b) {
                    if (a.time != b.time) return a.time < b.time;
                    return a.seq < b.seq;
                  });
        size_ -= overdue_.size();
        out->insert(out->end(), overdue_.begin(), overdue_.end());
        if (overdue_.capacity() > kShrinkCapacity) {
          std::vector<Event>().swap(overdue_);
        } else {
          overdue_.clear();
        }
        return true;
      }
      // All levels drained: jump to the overflow horizon and re-bucket.
      if (size_ == overflow_.size()) {
        now_ = overflow_min_;
        FlushOverflow();
        continue;
      }
      MaybeFlushOverflow();
      if (!overdue_.empty()) continue;
      int64_t t0 = NextLevel0Time();
      int64_t w1 = NextWindowStart(1);
      int64_t w2 = NextWindowStart(2);
      // Cascade upper levels first on ties: a window starting exactly at
      // the next L0 deadline may hold events of that same tick.
      if (w2 <= w1 && w2 <= t0) {
        Cascade(2, w2);
        continue;
      }
      if (w1 <= t0) {
        Cascade(1, w1);
        continue;
      }
      now_ = t0;
      std::vector<Event>& slot = levels_[0].slots[SlotIndex(0, t0)];
      std::sort(slot.begin(), slot.end(),
                [](const Event& a, const Event& b) { return a.seq < b.seq; });
      size_ -= slot.size();
      out->insert(out->end(), slot.begin(), slot.end());
      ClearSlot(0, SlotIndex(0, t0));
      return true;
    }
  }

  /// Bytes held by slot vectors, the overdue bucket, and the overflow
  /// level — the metric the post-storm shrink regression test watches.
  size_t MemoryBytes() const {
    size_t bytes = overdue_.capacity() * sizeof(Event) +
                   overflow_.capacity() * sizeof(Event);
    for (const Level& level : levels_) {
      for (const std::vector<Event>& slot : level.slots) {
        bytes += slot.capacity() * sizeof(Event);
      }
    }
    return bytes;
  }

 private:
  static constexpr int kSlotBits = 11;  // 2048 slots per level
  static constexpr size_t kSlots = size_t{1} << kSlotBits;
  static constexpr size_t kMask = kSlots - 1;
  static constexpr int kLevels = 3;
  static constexpr size_t kWords = kSlots / 64;
  /// A slot that grew past this many events during a login storm gives
  /// its capacity back once drained instead of holding the high-water
  /// mark for the rest of the run.
  static constexpr size_t kShrinkCapacity = 1024;

  struct Level {
    std::array<std::vector<Event>, kSlots> slots;
    std::array<uint64_t, kWords> bitmap{};
  };

  static constexpr int Shift(int level) { return level * kSlotBits; }

  size_t SlotIndex(int level, int64_t time) const {
    return static_cast<size_t>(time >> Shift(level)) & kMask;
  }

  /// Span (seconds) one slot of `level` covers.
  static constexpr int64_t SlotSpan(int level) {
    return int64_t{1} << Shift(level);
  }

  /// Horizon of `level`: deltas below this fit somewhere in it or below.
  static constexpr int64_t Horizon(int level) {
    return int64_t{1} << Shift(level + 1);
  }

  void PlaceFuture(const Event& e) {
    for (int level = 0; level < kLevels; ++level) {
      // Level fit is judged by SLOT distance, not raw delta: a delta just
      // under the level's horizon can still straddle enough slot
      // boundaries to wrap the absolute index back onto the slot holding
      // `now_` (distance kSlots reads as 0), which the occupancy scan
      // would misread as a full rotation away.  Slot distance >= 1 is
      // guaranteed for upper levels — distance 0 there implies the delta
      // fits a lower level, which was tried first.
      int64_t dist = (e.time >> Shift(level)) - (now_ >> Shift(level));
      if (dist < static_cast<int64_t>(kSlots)) {
        size_t idx = SlotIndex(level, e.time);
        levels_[level].slots[idx].push_back(e);
        levels_[level].bitmap[idx >> 6] |= uint64_t{1} << (idx & 63);
        return;
      }
    }
    if (overflow_.empty() || e.time < overflow_min_) overflow_min_ = e.time;
    overflow_.push_back(e);
  }

  void ClearSlot(int level, size_t idx) {
    std::vector<Event>& slot = levels_[level].slots[idx];
    if (slot.capacity() > kShrinkCapacity) {
      std::vector<Event>().swap(slot);
    } else {
      slot.clear();
    }
    levels_[level].bitmap[idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }

  /// Circular distance (in slots) from this level's current position to
  /// its first occupied slot.  Distance 0 reads as a full rotation
  /// (kSlots): both callers (NextLevel0Time, NextWindowStart) check the
  /// slot containing `now_` before scanning, so by the time the scan runs
  /// the base slot is known empty and its bit can only mean wrap-around.
  /// Returns -1 when the level is empty.
  int64_t FirstOccupiedDistance(int level) const {
    const Level& lvl = levels_[level];
    size_t base = SlotIndex(level, now_);
    for (size_t step = 0; step <= kWords; ++step) {
      size_t word = ((base >> 6) + step) % kWords;
      uint64_t bits = lvl.bitmap[word];
      if (step == 0) {
        // Bits strictly after `base` within its word.
        uint64_t mask_above =
            (base & 63) == 63 ? 0 : (~uint64_t{0} << ((base & 63) + 1));
        bits &= mask_above;
      } else if (step == kWords) {
        // Wrapped back to base's word: bits at or before `base`.
        bits &= ~uint64_t{0} >> (63 - (base & 63));
      }
      if (bits == 0) continue;
      size_t idx = (word << 6) + static_cast<size_t>(std::countr_zero(bits));
      int64_t dist =
          static_cast<int64_t>((idx - base + kSlots) & kMask);
      return dist == 0 ? static_cast<int64_t>(kSlots) : dist;
    }
    return -1;
  }

  /// Absolute time of the earliest level-0 event, or INT64_MAX.
  int64_t NextLevel0Time() const {
    // The slot containing now_ itself may be occupied right after a
    // cascade delivered same-tick events; it must be checked before the
    // circular scan, which only reports slots strictly after now_.
    if (!levels_[0].slots[SlotIndex(0, now_)].empty()) return now_;
    // A level-0 slot at circular distance d holds exactly time now_ + d
    // (a full-rotation distance cannot happen: deltas >= 2048 go up).
    int64_t dist = FirstOccupiedDistance(0);
    if (dist < 0) return std::numeric_limits<int64_t>::max();
    return now_ + dist;
  }

  /// Start time of the earliest occupied window of an upper level, or
  /// INT64_MAX when that level is empty.
  int64_t NextWindowStart(int level) const {
    // The slot containing now_ can hold pending events when a cascade of
    // a higher level just advanced now_ to a window boundary both levels
    // share (a 2048^2-aligned instant is also 2048-aligned); it must be
    // checked before the circular scan, which only reports slots strictly
    // after now_'s.  In every reachable such state now_ sits exactly at
    // the window start, so aligning down returns now_ itself and the
    // cascade does not move time backward.
    if (!levels_[level].slots[SlotIndex(level, now_)].empty()) {
      return (now_ >> Shift(level)) << Shift(level);
    }
    int64_t dist = FirstOccupiedDistance(level);
    if (dist < 0) return std::numeric_limits<int64_t>::max();
    return ((now_ >> Shift(level)) + dist) << Shift(level);
  }

  /// Advances `now_` to `window_start` and redistributes that slot of
  /// `level` into lower levels.  Every redistributed delta is smaller
  /// than the slot's span, so events strictly descend — no cycles.
  void Cascade(int level, int64_t window_start) {
    now_ = window_start;
    size_t idx = SlotIndex(level, window_start);
    std::vector<Event> moved = std::move(levels_[level].slots[idx]);
    ClearSlot(level, idx);
    for (const Event& e : moved) PlaceFuture(e);
  }

  void MaybeFlushOverflow() {
    if (!overflow_.empty() && overflow_min_ - now_ < Horizon(kLevels - 1)) {
      FlushOverflow();
    }
  }

  void FlushOverflow() {
    std::vector<Event> moved = std::move(overflow_);
    overflow_.clear();
    overflow_min_ = std::numeric_limits<int64_t>::max();
    for (const Event& e : moved) {
      if (e.time <= now_) {
        overdue_.push_back(e);  // exact horizon jump lands events on now_
      } else {
        PlaceFuture(e);
      }
    }
    // Overdue events surfaced here are delivered by the caller's next
    // PopNextTick pass; PopNextTick's own loop must notice them too.
  }

  std::array<Level, kLevels> levels_;
  std::vector<Event> overdue_;
  std::vector<Event> overflow_;
  int64_t overflow_min_ = std::numeric_limits<int64_t>::max();
  int64_t now_ = 0;
  size_t size_ = 0;
};

}  // namespace prorp::sim

#endif  // PRORP_SIM_TIMER_WHEEL_H_
