#include "sim/resume_capacity.h"

#include <algorithm>
#include <cmath>

#include "common/backoff.h"

namespace prorp::sim {

NodeCapacityModel::NodeCapacityModel(const CapacityOptions& options)
    : options_(options) {
  size_t n = std::max<size_t>(1, options_.num_nodes);
  int slots = std::max(1, options_.concurrency_per_node);
  nodes_.resize(n);
  for (Node& node : nodes_) {
    node.slot_free.assign(static_cast<size_t>(slots), 0);
    node.tokens = options_.admission_burst;
  }
}

NodeCapacityModel::Grant NodeCapacityModel::Acquire(
    size_t node_index, EpochSeconds now, uint64_t jitter_key,
    EpochSeconds blocked_until, bool limited) {
  Node& node = nodes_[node_index % nodes_.size()];

  // Token-bucket admission: refill for the elapsed virtual time, then pay
  // one token — waiting for the refill if the bucket is empty.
  EpochSeconds token_ready = now;
  if (limited && options_.admission_rate > 0) {
    EpochSeconds elapsed = std::max<EpochSeconds>(0, now - node.refilled_at);
    node.tokens =
        std::min(options_.admission_burst,
                 node.tokens + static_cast<double>(elapsed) *
                                   options_.admission_rate);
    node.refilled_at = std::max(node.refilled_at, now);
    if (node.tokens >= 1.0) {
      node.tokens -= 1.0;
    } else {
      // Deficit wait measured from refilled_at, which already accounts
      // for tokens promised to earlier waiting grants.
      DurationSeconds wait = static_cast<DurationSeconds>(
          std::ceil((1.0 - node.tokens) / options_.admission_rate));
      token_ready = node.refilled_at + wait;
      node.tokens += static_cast<double>(wait) * options_.admission_rate - 1.0;
      node.refilled_at = token_ready;
    }
  }

  auto slot = std::min_element(node.slot_free.begin(), node.slot_free.end());
  EpochSeconds start = std::max({now, token_ready, *slot, blocked_until});
  if (start > now && options_.queue_jitter_max > 0) {
    // Contended grants de-synchronize; uncontended ones stay exact.
    start += static_cast<DurationSeconds>(
        common::JitterHash(options_.seed ^ jitter_key, grants_) %
        static_cast<uint64_t>(options_.queue_jitter_max + 1));
  }
  Grant grant;
  grant.start = start;
  grant.done = start + options_.service_time;
  grant.wait = start - now;
  *slot = grant.done;
  waits_.Add(static_cast<double>(grant.wait));
  ++grants_;
  return grant;
}

size_t NodeCapacityModel::LeastLoadedOther(size_t home,
                                           EpochSeconds now) const {
  home %= nodes_.size();
  if (nodes_.size() == 1) return home;
  size_t best = home;
  EpochSeconds best_free = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i == home) continue;
    EpochSeconds earliest = *std::min_element(nodes_[i].slot_free.begin(),
                                              nodes_[i].slot_free.end());
    earliest = std::max(earliest, now);
    if (best == home || earliest < best_free) {
      best = i;
      best_free = earliest;
    }
  }
  return best;
}

}  // namespace prorp::sim
