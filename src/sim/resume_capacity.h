#ifndef PRORP_SIM_RESUME_CAPACITY_H_
#define PRORP_SIM_RESUME_CAPACITY_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/time_util.h"

namespace prorp::sim {

/// Knobs of the per-node resume queueing model (SimOptions mirrors these;
/// see DESIGN.md section 8).
struct CapacityOptions {
  size_t num_nodes = 1;
  /// Resume workflows a node executes concurrently.
  int concurrency_per_node = 4;
  /// Service time of one resume once it starts executing (the base term
  /// of base + congestion).
  DurationSeconds service_time = 60;
  /// Token-bucket admission limiter: resume starts per second per node
  /// (0 = unlimited) with a burst allowance.  Tokens throttle how fast a
  /// freshly healed node accepts work — the knob a storm abuses.
  double admission_rate = 0;
  double admission_burst = 4;
  /// Deterministic jitter in [0, max] added ONLY to contended grants
  /// (start > now), de-synchronizing a herd that queued up at the same
  /// instant.  Uncontended grants start exactly at `now`, which is what
  /// keeps a fault-free run bit-identical to the scalar-latency model.
  DurationSeconds queue_jitter_max = 5;
  uint64_t seed = 0;
};

/// Finite resume capacity of the simulated fleet's nodes: each node owns
/// `concurrency_per_node` slots and a token bucket.  A resume request is
/// granted the earliest start compatible with a free slot, an available
/// token, and any outage (`blocked_until`), so resume latency inflates
/// under load (base service time + congestion wait) instead of staying
/// the scalar `resume_latency`.
///
/// Purely arithmetic and driven by the caller's virtual clock: identical
/// call sequences yield identical grants, whatever the wall clock does.
class NodeCapacityModel {
 public:
  explicit NodeCapacityModel(const CapacityOptions& options);

  struct Grant {
    EpochSeconds start = 0;  // when the resume begins executing
    EpochSeconds done = 0;   // when resources are usable
    DurationSeconds wait = 0;  // start - now (queueing + token + outage)
  };

  /// Books one resume on `node` (modulo the node count) at virtual time
  /// `now`.  `jitter_key` seeds the deterministic contention jitter;
  /// `blocked_until` defers the start past an outage (0 = none).
  /// `limited` = false bypasses the token bucket (reactive logins are
  /// never admission-limited — only physical slots and outages delay
  /// them); control-plane-initiated work passes true.
  Grant Acquire(size_t node, EpochSeconds now, uint64_t jitter_key,
                EpochSeconds blocked_until = 0, bool limited = true);

  /// The node (!= home unless there is only one) whose earliest slot
  /// frees soonest — the hedge-routing target.
  size_t LeastLoadedOther(size_t home, EpochSeconds now) const;

  uint64_t grants() const { return grants_; }
  /// Waits of every grant (congestion telemetry; all zeros when the
  /// fleet is uncontended).
  const Summary& waits() const { return waits_; }

 private:
  struct Node {
    std::vector<EpochSeconds> slot_free;  // per-slot next-free time
    double tokens = 0;
    EpochSeconds refilled_at = 0;
  };

  CapacityOptions options_;
  std::vector<Node> nodes_;
  Summary waits_;
  uint64_t grants_ = 0;
};

}  // namespace prorp::sim

#endif  // PRORP_SIM_RESUME_CAPACITY_H_
