#include "sim/failover_torture.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "controlplane/durable_control_plane.h"
#include "controlplane/failover.h"
#include "controlplane/node_health.h"
#include "faults/fault_plan.h"
#include "net/dispatcher.h"
#include "net/fault_injecting_transport.h"
#include "net/node_agent.h"
#include "policy/lifecycle.h"

namespace prorp::sim {
namespace {

using controlplane::DurableControlPlane;
using controlplane::FailoverEngine;
using controlplane::NodeHealth;
using controlplane::NodeHealthTracker;
using controlplane::ResumeAttempt;
using telemetry::DbId;
using net::EndpointId;
using net::FaultInjectingTransport;
using net::NodeAgent;
using net::PartitionSpec;
using net::SlowNodeSpec;
using net::TransportDispatcher;

constexpr EpochSeconds kStart = 1'000'000;
constexpr DurationSeconds kStep = 60;
/// ForkStream id of the transport fault stream (shared with the network
/// torture: message-fault decisions never touch the workload stream).
constexpr uint64_t kTransportFaultStream = 0x6e65746661756c74ULL;  // netfault

/// The node-side truth about one database.  `owner` is the node whose
/// side effects are currently live — the double-live invariant is checked
/// against it on every execution.
struct SimDb {
  bool resumed = false;
  EpochSeconds resumed_at = 0;
  EpochSeconds pending_completion = 0;  // 0 = none
  bool outstanding_reactive = false;    // acked login awaiting resources
  uint32_t owner = 0;                   // node holding live side effects
};

ControlPlaneConfig TortureConfig(const FailoverTortureOptions& opt) {
  ControlPlaneConfig config;
  config.prewarm_interval = 300;
  config.resume_operation_period = kStep;
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  config.breaker_window = 10;
  config.breaker_failure_ratio = 0.5;
  config.breaker_open_duration = 300;
  config.queue_capacity = 32;
  config.admission_control_enabled = true;
  config.deadline_hedging_enabled = true;
  config.deadline_reactive = 120;
  config.deadline_imminent = 600;
  config.storm_login_spike_threshold = opt.storm ? 16 : 0;
  config.storm_recovery_backlog = 8;
  config.storm_cooldown = 900;
  config.catch_up_enabled = true;
  config.catch_up_lookback = 3600;
  return config;
}

class Harness {
 public:
  explicit Harness(const FailoverTortureOptions& opt)
      : opt_(opt),
        dbs_(static_cast<size_t>(opt.num_dbs)),
        rng_(opt.seed * 0x9e3779b97f4a7c15ULL + 1),
        fail_rng_(opt.seed ^ 0xdeadbeefcafef00dULL),
        plan_(Rng(opt.seed).ForkStream(kTransportFaultStream).NextU64()),
        transport_(&plan_, TransportOptions()),
        dispatcher_(&transport_, DispatcherOptions(opt),
                    [this](const ResumeAttempt& a) { return Route(a); }) {
    if (opt.drop_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.drop_p,
                                faults::FaultKind::kMsgDrop);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.drop_p,
                                faults::FaultKind::kMsgDrop);
    }
    if (opt.duplicate_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.duplicate_p,
                                faults::FaultKind::kMsgDuplicate);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.duplicate_p,
                                faults::FaultKind::kMsgDuplicate);
    }
    if (opt.delay_p > 0) {
      plan_.FailWithProbability(faults::FaultOp::kMsgRequest, opt.delay_p,
                                faults::FaultKind::kMsgDelay);
      plan_.FailWithProbability(faults::FaultOp::kMsgAck, opt.delay_p,
                                faults::FaultKind::kMsgDelay);
    }

    // Zombie and slow faults are transport-level windows, installed up
    // front on the absolute clock; crashes are applied in the step loop.
    for (const NodeFaultSpec& f : opt.faults) {
      const EpochSeconds from = StepTime(f.at_step);
      const EpochSeconds until = StepTime(f.at_step + f.duration_steps);
      switch (f.kind) {
        case NodeFaultSpec::Kind::kZombie: {
          PartitionSpec p;
          p.from = from;
          p.until = until;
          p.direction = PartitionSpec::Direction::kFromNodes;
          p.first_node = f.node;
          p.last_node = f.node;
          transport_.AddPartition(p);
          break;
        }
        case NodeFaultSpec::Kind::kSlow: {
          SlowNodeSpec s;
          s.node = f.node;
          s.from = from;
          s.until = until;
          s.delay = f.slow_delay;
          transport_.AddSlowNode(s);
          break;
        }
        case NodeFaultSpec::Kind::kCrash:
          break;
      }
    }

    for (int n = 0; n < opt.num_nodes; ++n) {
      const auto id = static_cast<EndpointId>(1 + n);
      agents_.push_back(std::make_unique<NodeAgent>(
          id, &transport_,
          [this, id](const ResumeAttempt& a, EpochSeconds t) {
            return NodeResume(id, a, t);
          }));
      agents_.back()->set_quiesce_handler(
          [this, id](EpochSeconds t) { ReleaseNode(id, t); });
    }

    if (opt.detection_enabled) BuildDetection();
  }

  Result<FailoverTortureResult> Run() {
    PRORP_RETURN_IF_ERROR(Reopen(kStart));

    now_ = kStart;
    for (int i = 0; i < opt_.num_dbs; ++i) {
      EpochSeconds pred =
          rng_.NextBool(0.5)
              ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(
                                 static_cast<uint64_t>(opt_.steps) * kStep))
              : 0;
      PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
          static_cast<DbId>(i), policy::DbState::kPhysicallyPaused, pred));
    }

    const int outage_start = opt_.steps / 3;
    const int outage_end = outage_start + 5;
    const int storm_step = opt_.steps / 2;
    for (int step = 0; step < opt_.steps; ++step) {
      now_ = StepTime(step);
      outage_now_ = opt_.outage && step >= outage_start && step < outage_end;

      // Node-fault edges: crash onset kills the agent and destroys its
      // side effects; crash end restarts the process.  Zombie/slow
      // windows are transport-resident — only their onset is recorded
      // here, for the detection-delay clock.
      for (const NodeFaultSpec& f : opt_.faults) {
        if (step == f.at_step) {
          fault_started_[f.node] = now_;
          if (f.kind == NodeFaultSpec::Kind::kCrash) {
            agents_[f.node - 1]->Crash();
            ReleaseNode(f.node, now_);
          }
        }
        if (step == f.at_step + f.duration_steps &&
            f.kind == NodeFaultSpec::Kind::kCrash) {
          agents_[f.node - 1]->Restart(now_);
        }
      }

      if (step == opt_.crash_at_step) {
        // Control-plane crash.  The detector and the failover engine die
        // with the plane: the new incarnation starts from a fresh tracker
        // (nodes re-register healthy) and re-detects any still-dead node
        // from its continuing grant silence — the exactly-once argument
        // does not depend on detector state surviving.
        plane_.reset();
        ++result_.recoveries;
        if (opt_.detection_enabled) {
          FoldDetectionStats();
          BuildDetection();
        }
        PRORP_RETURN_IF_ERROR(Reopen(now_));
      }

      // Pause churn: completed databases go idle again.
      for (int i = 0; i < opt_.num_dbs; ++i) {
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (!d.resumed || d.pending_completion != 0) continue;
        if (!rng_.NextBool(0.05)) continue;
        EpochSeconds pred =
            rng_.NextBool(0.5)
                ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(600))
                : 0;
        PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
            static_cast<DbId>(i), policy::DbState::kPhysicallyPaused, pred));
        d.resumed = false;
        d.owner = 0;
        placed_.erase(static_cast<DbId>(i));
      }

      // Reactive logins: a base trickle, plus a spike at the storm step.
      int logins = static_cast<int>(rng_.NextBelow(3));
      if (opt_.storm && step == storm_step) logins = 24;
      for (int n = 0; n < logins; ++n) {
        int i = static_cast<int>(
            rng_.NextBelow(static_cast<uint64_t>(opt_.num_dbs)));
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (d.resumed || d.outstanding_reactive) continue;
        PRORP_RETURN_IF_ERROR(
            plane_->service().EnqueueReactive(static_cast<DbId>(i), now_));
        ++result_.accepted_reactive;
        d.outstanding_reactive = true;
        login_at_[static_cast<DbId>(i)] = now_;
      }

      PRORP_RETURN_IF_ERROR(plane_->service().RunOnce(now_).status());
      PRORP_RETURN_IF_ERROR(SubTicks());
      PRORP_RETURN_IF_ERROR(DeliverCompletions());
      PRORP_RETURN_IF_ERROR(plane_->MaybeCheckpoint());
    }

    PRORP_RETURN_IF_ERROR(Drain());

    for (const SimDb& d : dbs_) {
      if (d.outstanding_reactive && !d.resumed) ++result_.lost_reactive;
    }
    FoldDetectionStats();
    const auto& diag = plane_->service().diagnostics();
    result_.accounting_ok = plane_->service().AccountingReconciles();
    result_.incidents = diag.incidents;
    result_.total_resumed = plane_->service().total_resumed();
    result_.dispatch_timeouts = diag.dispatch_timeouts;
    result_.retransmissions = dispatcher_.stats().retransmissions;
    result_.lease_probes = dispatcher_.stats().lease_probes;
    result_.failover_requeues = diag.failover_requeues;
    for (const auto& agent : agents_) {
      result_.self_quiesces += agent->stats().self_quiesces;
      result_.lease_expired_rejected += agent->stats().lease_expired_rejected;
    }
    result_.transport = transport_.stats();
    return result_;
  }

 private:
  static EpochSeconds StepTime(int step) {
    return kStart + static_cast<EpochSeconds>(step + 1) * kStep;
  }

  static FaultInjectingTransport::Options TransportOptions() {
    FaultInjectingTransport::Options topt;
    topt.delay_min = 30;
    topt.delay_max = 600;
    return topt;
  }

  static TransportDispatcher::Options DispatcherOptions(
      const FailoverTortureOptions& opt) {
    TransportDispatcher::Options dopt;
    dopt.retransmit_after = 30;
    dopt.max_transmissions = 4;
    dopt.lease_interval = opt.lease_interval;
    dopt.lease_ttl = opt.detection_enabled ? opt.lease_ttl : 0;
    dopt.first_node = 1;
    dopt.num_nodes = opt.num_nodes;
    return dopt;
  }

  NodeHealthTracker::Options TrackerOptions() const {
    NodeHealthTracker::Options topt;
    topt.lease_ttl = opt_.lease_ttl;
    topt.suspect_after = opt_.suspect_after;
    topt.dead_grace = opt_.dead_grace;
    topt.rejoin_after = opt_.rejoin_after;
    topt.slow_p99_threshold = opt_.slow_p99_threshold;
    topt.min_latency_samples = opt_.min_latency_samples;
    return topt;
  }

  /// (Re)builds the detector and failover engine — at construction, and
  /// again after a control-plane crash (a fresh incarnation's detector
  /// starts empty and re-learns node health from live traffic).
  void BuildDetection() {
    tracker_ = std::make_unique<NodeHealthTracker>(TrackerOptions());
    engine_ = std::make_unique<FailoverEngine>(
        nullptr, tracker_.get(), [this](uint32_t node) {
          std::vector<DbId> out;
          for (const auto& [db, owner] : placed_) {
            if (owner == node) out.push_back(db);
          }
          return out;
        });
    engine_->set_requeue_hook([this](DbId db, uint32_t, EpochSeconds t) {
      requeued_at_[db] = t;
    });
    deaths_seen_ = 0;
    dispatcher_.set_health_tracker(tracker_.get());
  }

  /// Accumulates the current detector/engine generation's counters into
  /// the result (called before the generation is discarded, and once at
  /// the end of the run).
  void FoldDetectionStats() {
    if (tracker_ == nullptr) return;
    HarvestDeaths();
    result_.node_rejoins += tracker_->stats().rejoins;
    result_.suspects_gray_failure += tracker_->stats().suspects_gray_failure;
    result_.failover_deduped += engine_->stats().deduped;
  }

  /// Routes an attempt to its home node unless the detector has declared
  /// that node dead — death is strictly past the node's fence-safe time,
  /// so diverting then (and only then) cannot double-live a database.
  EndpointId Route(const ResumeAttempt& a) {
    auto target = static_cast<uint32_t>(
        1 + (a.db + static_cast<uint32_t>(a.node_offset)) %
                static_cast<uint32_t>(opt_.num_nodes));
    if (tracker_ == nullptr) return static_cast<EndpointId>(target);
    bool diverted = false;
    for (int i = 0; i < opt_.num_nodes; ++i) {
      if (tracker_->health(target) != NodeHealth::kDead) break;
      target = target % static_cast<uint32_t>(opt_.num_nodes) + 1;
      diverted = true;
    }
    if (diverted) ++result_.diverted_dispatches;
    return static_cast<EndpointId>(target);
  }

  /// The resume side effect as node `node` executes it — behind the
  /// agent's dedup table, epoch fence, and lease fence.
  Status NodeResume(EndpointId node, const ResumeAttempt& a,
                    EpochSeconds now) {
    // The agent only calls the executor while it believes it may work; if
    // its lease has in fact lapsed, the self-quiesce fence failed.
    if (!agents_[node - 1]->LeaseValid(now)) ++result_.fence_violations;
    SimDb& d = dbs_[a.db];
    if (outage_now_) return Status::Unavailable("resume path outage");
    if (d.resumed) return Status::FailedPrecondition("already resumed");
    if (!drain_mode_ && fail_rng_.NextBool(opt_.fail_probability)) {
      return Status::Unavailable("transient workflow failure");
    }
    if ((a.request_id >> 32) < current_epoch_) ++result_.stale_epoch_applied;
    if (!applied_rids_.insert(a.request_id).second) ++result_.double_applies;
    if (d.owner != 0 && d.owner != node) ++result_.double_live;
    d.resumed = true;
    d.resumed_at = now;
    d.pending_completion = now + 30;
    d.owner = node;
    placed_[a.db] = node;
    if (auto it = requeued_at_.find(a.db); it != requeued_at_.end()) {
      if (now >= it->second) {
        result_.replacement_delay.Add(static_cast<double>(now - it->second));
      }
      requeued_at_.erase(it);
    }
    return plane_->metadata().UpsertState(a.db, policy::DbState::kResumed, 0);
  }

  /// Destroys every side effect node `node` holds — invoked by the
  /// agent's self-quiesce (lease lapsed) and by the harness at crash
  /// onset.  The plane's placement belief (`placed_`) is deliberately
  /// NOT touched: the plane does not observe the quiesce, it re-learns
  /// through failover or reconciliation.
  void ReleaseNode(uint32_t node, EpochSeconds /*now*/) {
    for (auto& d : dbs_) {
      if (d.owner != node) continue;
      d.resumed = false;
      d.pending_completion = 0;
      d.owner = 0;
    }
  }

  /// Per-sub-tick machinery: local node clocks (self-quiesce), message
  /// delivery + retransmission + lease fan-out, death declarations and
  /// their failovers, then the service drains any requeued work.
  Status SubTicks() {
    for (DurationSeconds dt = 10; dt < kStep; dt += 10) {
      const EpochSeconds t = now_ + dt;
      for (const auto& agent : agents_) agent->AdvanceTime(t);
      dispatcher_.Tick(t);
      if (engine_ != nullptr) {
        PRORP_RETURN_IF_ERROR(engine_->Tick(t));
        HarvestDeaths();
      }
      plane_->service().Pump(t);
    }
    return Status::OK();
  }

  /// Folds newly recorded death declarations into the result, clocking
  /// each against its fault's onset.
  void HarvestDeaths() {
    const auto& deaths = engine_->deaths();
    for (; deaths_seen_ < deaths.size(); ++deaths_seen_) {
      const auto& death = deaths[deaths_seen_];
      ++result_.deaths_declared;
      auto it = fault_started_.find(death.node);
      if (it != fault_started_.end() && death.declared_at >= it->second) {
        result_.detection_delay.Add(
            static_cast<double>(death.declared_at - it->second));
      }
    }
  }

  /// Workflow completions report over a reliable side channel (the
  /// node's resource-arrival signal), not the lossy request/ack
  /// transport.
  Status DeliverCompletions() {
    for (int i = 0; i < opt_.num_dbs; ++i) {
      SimDb& d = dbs_[static_cast<size_t>(i)];
      if (d.pending_completion == 0 || d.pending_completion > now_) continue;
      if (!d.resumed) {
        d.pending_completion = 0;  // released again before delivery
        continue;
      }
      if (plane_->service().IsUnacked(static_cast<DbId>(i))) {
        // The resume's ack is still on the wire: hold the level-triggered
        // resource-arrival signal until the ack resolves.
        continue;
      }
      PRORP_RETURN_IF_ERROR(plane_->metadata().UpsertState(
          static_cast<DbId>(i), policy::DbState::kResumed, 0));
      plane_->service().CompleteWorkflow(static_cast<DbId>(i), now_);
      d.pending_completion = 0;
      if (d.outstanding_reactive) {
        d.outstanding_reactive = false;
        if (auto it = login_at_.find(static_cast<DbId>(i));
            it != login_at_.end()) {
          if (now_ >= it->second) {
            result_.login_wait.Add(static_cast<double>(now_ - it->second));
          }
          login_at_.erase(it);
        }
      }
    }
    return Status::OK();
  }

  /// Runs the clock forward fault-free until every queued, in-flight, and
  /// unacked workflow resolved and the wire is empty.  Node-fault windows
  /// are all behind us by construction; any agent still crashed (a window
  /// extending past the last step) is restarted first.
  Status Drain() {
    drain_mode_ = true;
    outage_now_ = false;
    transport_.set_fault_plan(nullptr);
    for (const auto& agent : agents_) {
      if (agent->down()) agent->Restart(now_);
    }
    for (int iter = 0; iter < 600; ++iter) {
      if (plane_->service().pending_workflows() == 0 &&
          plane_->service().in_flight() == 0 &&
          plane_->service().unacked() == 0 && dispatcher_.Idle() &&
          transport_.Idle()) {
        result_.drained = true;
        transport_.DeliverDue(now_ + 1'000'000);
        return Status::OK();
      }
      now_ += kStep;
      PRORP_RETURN_IF_ERROR(plane_->service().RunOnce(now_).status());
      PRORP_RETURN_IF_ERROR(SubTicks());
      PRORP_RETURN_IF_ERROR(DeliverCompletions());
    }
    return Status::TimedOut(
        "failover torture drain did not converge: pending=" +
        std::to_string(plane_->service().pending_workflows()) +
        " in_flight=" + std::to_string(plane_->service().in_flight()) +
        " unacked=" + std::to_string(plane_->service().unacked()) +
        " outstanding=" + std::to_string(dispatcher_.outstanding()) +
        " wire_idle=" + (transport_.Idle() ? "y" : "n"));
  }

  Status Reopen(EpochSeconds now) {
    DurableControlPlane::Options popt;
    popt.dir = opt_.dir;
    popt.config = TortureConfig(opt_);
    popt.max_attempts = 10;
    popt.checkpoint_every = opt_.checkpoint_every;
    auto opened = DurableControlPlane::Open(
        popt,
        [this](const ResumeAttempt& a, EpochSeconds t) {
          return dispatcher_.DispatchResume(a, t);
        },
        [this](DbId db) { return dbs_[db].resumed; }, now);
    if (!opened.ok()) return opened.status();
    plane_ = std::move(*opened);
    // Order matters: repoint the dispatcher and the failover engine at
    // the new incarnation, then fence every node under the new epoch —
    // all before the harness delivers another message.
    dispatcher_.set_service(&plane_->service());
    if (engine_ != nullptr) engine_->set_service(&plane_->service());
    current_epoch_ = plane_->service().epoch();
    for (const auto& agent : agents_) agent->FenceEpoch(current_epoch_);
    return Status::OK();
  }

  const FailoverTortureOptions& opt_;
  std::vector<SimDb> dbs_;
  Rng rng_;
  Rng fail_rng_;
  faults::FaultPlan plan_;
  FaultInjectingTransport transport_;
  TransportDispatcher dispatcher_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  std::unique_ptr<NodeHealthTracker> tracker_;
  std::unique_ptr<FailoverEngine> engine_;
  std::unique_ptr<DurableControlPlane> plane_;
  FailoverTortureResult result_;
  std::unordered_set<uint64_t> applied_rids_;
  /// Plane-side placement belief: where each database last executed a
  /// resume.  Survives node quiesces and plane crashes (placement
  /// metadata is durable in the real system); the failover engine
  /// enumerates from it.
  std::map<DbId, uint32_t> placed_;
  std::unordered_map<DbId, EpochSeconds> requeued_at_;
  std::unordered_map<DbId, EpochSeconds> login_at_;
  std::map<uint32_t, EpochSeconds> fault_started_;
  size_t deaths_seen_ = 0;
  uint64_t current_epoch_ = 0;
  EpochSeconds now_ = kStart;
  bool outage_now_ = false;
  bool drain_mode_ = false;
};

}  // namespace

Result<FailoverTortureResult> RunFailoverTorture(
    const FailoverTortureOptions& options) {
  Harness harness(options);
  return harness.Run();
}

}  // namespace prorp::sim
