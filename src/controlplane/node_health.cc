#include "controlplane/node_health.h"

#include <algorithm>

namespace prorp::controlplane {

void NodeHealthTracker::Register(uint32_t node, EpochSeconds now) {
  Ensure(node, now);
}

NodeHealthTracker::NodeState& NodeHealthTracker::Ensure(uint32_t node,
                                                        EpochSeconds now) {
  auto [it, inserted] = nodes_.try_emplace(node);
  if (inserted) it->second.last_grant_at = now;
  return it->second;
}

void NodeHealthTracker::PushLatency(NodeState& st, DurationSeconds latency) {
  st.ring[static_cast<size_t>(st.ring_pos)] = latency;
  st.ring_pos = (st.ring_pos + 1) % kRingSize;
  st.ring_n = std::min(st.ring_n + 1, kRingSize);
}

DurationSeconds NodeHealthTracker::RingP99(const NodeState& st) {
  if (st.ring_n == 0) return 0;
  std::array<DurationSeconds, kRingSize> sorted = st.ring;
  const int n = st.ring_n;
  // Exact p99 over the occupied prefix-equivalent window: rank
  // ceil(0.99 * n) in 1-based terms.
  int rank = (99 * n + 99) / 100;  // ceil(0.99 * n)
  rank = std::clamp(rank, 1, n);
  std::nth_element(sorted.begin(), sorted.begin() + (rank - 1),
                   sorted.begin() + n);
  return sorted[static_cast<size_t>(rank - 1)];
}

bool NodeHealthTracker::Slow(const NodeState& st) const {
  return options_.slow_p99_threshold > 0 &&
         st.ring_n >= options_.min_latency_samples &&
         RingP99(st) > options_.slow_p99_threshold;
}

void NodeHealthTracker::OnRenewalSent(uint32_t node, EpochSeconds sent_at,
                                      DurationSeconds ttl) {
  NodeState& st = Ensure(node, sent_at);
  if (ttl > 0) {
    st.fence_safe_at = std::max(st.fence_safe_at, sent_at + ttl);
  }
}

void NodeHealthTracker::OnLeaseGrant(uint32_t node, DurationSeconds latency,
                                     EpochSeconds now) {
  NodeState& st = Ensure(node, now);
  ++st.grants;
  st.last_grant_at = now;
  PushLatency(st, latency);
  if (st.health == NodeHealth::kSuspect && !Slow(st)) {
    st.health = NodeHealth::kHealthy;
    st.gray = false;
    st.suspected_at = 0;
    ++stats_.recoveries;
  } else if (st.health == NodeHealth::kDead &&
             now >= st.died_at + options_.rejoin_after && !Slow(st)) {
    // The node came back and served its cooldown: re-admit.  Its old
    // fence-safe bound is history (the lease lapsed long ago); real
    // renewals restart from the dispatcher's next tick.
    st.health = NodeHealth::kHealthy;
    st.gray = false;
    st.suspected_at = 0;
    ++stats_.rejoins;
  }
}

void NodeHealthTracker::OnAckLatency(uint32_t node, DurationSeconds latency,
                                     EpochSeconds now) {
  NodeState& st = Ensure(node, now);
  PushLatency(st, latency);
}

void NodeHealthTracker::AdvanceTime(EpochSeconds now) {
  for (auto& [node, st] : nodes_) {
    switch (st.health) {
      case NodeHealth::kHealthy:
        if (now - st.last_grant_at > options_.suspect_after) {
          st.health = NodeHealth::kSuspect;
          st.gray = false;
          st.suspected_at = now;
          ++stats_.suspects_missed_grants;
        } else if (Slow(st)) {
          st.health = NodeHealth::kSuspect;
          st.gray = true;
          st.suspected_at = now;
          ++stats_.suspects_gray_failure;
        }
        break;
      case NodeHealth::kSuspect:
        // Death requires BOTH bounds: past the fence-safe time (the node
        // can no longer believe it holds a lease, so re-placement cannot
        // double-live) and a dwell so a one-tick blip does not fail the
        // node over.
        if (now > st.fence_safe_at &&
            now - st.suspected_at >= options_.dead_grace) {
          st.health = NodeHealth::kDead;
          st.died_at = now;
          st.ring_n = 0;
          st.ring_pos = 0;
          ++stats_.deaths;
          newly_dead_.push_back(node);
        }
        break;
      case NodeHealth::kDead:
        break;
    }
  }
}

NodeHealth NodeHealthTracker::health(uint32_t node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? NodeHealth::kHealthy : it->second.health;
}

EpochSeconds NodeHealthTracker::fence_safe_at(uint32_t node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.fence_safe_at;
}

bool NodeHealthTracker::DeadAndFenced(uint32_t node,
                                      EpochSeconds now) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.health == NodeHealth::kDead &&
         now > it->second.fence_safe_at;
}

std::vector<uint32_t> NodeHealthTracker::TakeNewlyDead() {
  std::vector<uint32_t> out;
  out.swap(newly_dead_);
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t NodeHealthTracker::lease_grants(uint32_t node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.grants;
}

DurationSeconds NodeHealthTracker::LatencyP99(uint32_t node) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end() ||
      it->second.ring_n < options_.min_latency_samples) {
    return 0;
  }
  return RingP99(it->second);
}

std::vector<uint32_t> NodeHealthTracker::Nodes() const {
  std::vector<uint32_t> out;
  out.reserve(nodes_.size());
  for (const auto& [node, st] : nodes_) out.push_back(node);
  return out;
}

}  // namespace prorp::controlplane
