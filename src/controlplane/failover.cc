#include "controlplane/failover.h"

#include <algorithm>

namespace prorp::controlplane {

Status FailoverEngine::Tick(EpochSeconds now) {
  for (uint32_t node : tracker_->TakeNewlyDead()) {
    PRORP_RETURN_IF_ERROR(service_->NoteNodeDead(node, now));
    DeathRecord record;
    record.node = node;
    record.declared_at = now;
    std::vector<DbId> dbs = enumerate_ ? enumerate_(node) : std::vector<DbId>{};
    std::sort(dbs.begin(), dbs.end());
    dbs.erase(std::unique(dbs.begin(), dbs.end()), dbs.end());
    for (DbId db : dbs) {
      const uint64_t before = service_->diagnostics().failover_requeues;
      PRORP_RETURN_IF_ERROR(service_->EnqueueFailover(db, now));
      if (service_->diagnostics().failover_requeues > before) {
        ++record.requeued;
        if (hook_) hook_(db, node, now);
      } else {
        ++record.deduped;
      }
    }
    stats_.requeued += record.requeued;
    stats_.deduped += record.deduped;
    ++stats_.nodes_failed_over;
    deaths_.push_back(record);
  }
  return Status::OK();
}

}  // namespace prorp::controlplane
