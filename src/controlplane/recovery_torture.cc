#include "controlplane/recovery_torture.h"

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "faults/crash_points.h"
#include "faults/fault_plan.h"
#include "policy/lifecycle.h"

namespace prorp::controlplane {
namespace {

constexpr EpochSeconds kStart = 1'000'000;
constexpr DurationSeconds kStep = 60;

/// The node-side truth about one database.  This state lives in the
/// harness, outside the control plane: it survives control-plane crashes
/// the way real nodes survive a control-plane failover, and is the oracle
/// recovery reconciles against.
struct SimDb {
  bool resumed = false;
  EpochSeconds resumed_at = 0;
  EpochSeconds pending_completion = 0;  // 0 = none
  bool outstanding_reactive = false;    // acked login awaiting resources
};

ControlPlaneConfig TortureConfig(const RecoveryTortureOptions& opt) {
  ControlPlaneConfig config;
  config.prewarm_interval = 300;
  config.resume_operation_period = kStep;
  // Backoff short enough that an outage window's failures retry well
  // within the run, long enough that max_attempts spans any outage — a
  // reactive workflow must never exhaust into an incident (that would be
  // an accepted-login loss the harness would rightly flag).
  config.retry_backoff_base = 60;
  config.retry_backoff_cap = 240;
  config.breaker_window = 10;
  config.breaker_failure_ratio = 0.5;
  config.breaker_open_duration = 300;
  config.queue_capacity = 32;
  config.admission_control_enabled = true;
  config.deadline_hedging_enabled = true;
  config.deadline_reactive = 120;
  config.deadline_imminent = 600;
  config.storm_login_spike_threshold = opt.storm ? 16 : 0;
  config.storm_recovery_backlog = 8;
  config.storm_cooldown = 900;
  config.catch_up_enabled = true;
  config.catch_up_lookback = 3600;
  return config;
}

class Harness {
 public:
  explicit Harness(const RecoveryTortureOptions& opt)
      : opt_(opt),
        dbs_(static_cast<size_t>(opt.num_dbs)),
        rng_(opt.seed * 0x9e3779b97f4a7c15ULL + 1),
        fail_rng_(opt.seed ^ 0xdeadbeefcafef00dULL) {}

  Result<RecoveryTortureResult> Run() {
    auto& registry = faults::CrashPointRegistry::Global();
    if (!opt_.crash_point.empty()) {
      registry.Arm(opt_.crash_point, opt_.crash_nth, opt_.crash_payload);
    }
    PRORP_RETURN_IF_ERROR(Reopen(kStart));

    // Bootstrap: every database starts physically paused; roughly half
    // get an activity prediction (the proactive path), the rest will only
    // come back through reactive logins.
    now_ = kStart;
    for (int i = 0; i < opt_.num_dbs; ++i) {
      EpochSeconds pred =
          rng_.NextBool(0.5)
              ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(
                                 static_cast<uint64_t>(opt_.steps) * kStep))
              : 0;
      // Every database must end up registered: an unacknowledged
      // bootstrap mutation is retried after the recovery (otherwise a
      // later login would target a database the metadata never saw).
      for (;;) {
        PRORP_ASSIGN_OR_RETURN(
            bool acked, TryUpsert(static_cast<DbId>(i),
                                  policy::DbState::kPhysicallyPaused, pred));
        if (acked) break;
      }
    }

    const int outage_start = opt_.steps / 3;
    const int outage_end = outage_start + 5;
    const int storm_step = opt_.steps / 2;
    for (int step = 0; step < opt_.steps; ++step) {
      now_ = kStart + static_cast<EpochSeconds>(step + 1) * kStep;
      outage_now_ = opt_.outage && step >= outage_start && step < outage_end;

      // Pause churn: completed databases go idle again with fresh
      // predictions, creating new pause episodes.
      for (int i = 0; i < opt_.num_dbs; ++i) {
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (!d.resumed || d.pending_completion != 0) continue;
        if (!rng_.NextBool(0.05)) continue;
        EpochSeconds pred =
            rng_.NextBool(0.5)
                ? now_ + 120 + static_cast<EpochSeconds>(rng_.NextBelow(600))
                : 0;
        PRORP_ASSIGN_OR_RETURN(
            bool acked, TryUpsert(static_cast<DbId>(i),
                                  policy::DbState::kPhysicallyPaused, pred));
        if (!acked) continue;  // pause not acknowledged; stay resumed
        d.resumed = false;
      }

      // Reactive logins: a base trickle, plus a spike at the storm step.
      int logins = static_cast<int>(rng_.NextBelow(3));
      if (opt_.storm && step == storm_step) logins = 24;
      for (int n = 0; n < logins; ++n) {
        int i = static_cast<int>(rng_.NextBelow(
            static_cast<uint64_t>(opt_.num_dbs)));
        SimDb& d = dbs_[static_cast<size_t>(i)];
        if (d.resumed || d.outstanding_reactive) continue;
        Status s = plane_->service().EnqueueReactive(
            static_cast<DbId>(i), now_);
        if (Crashed()) {
          PRORP_RETURN_IF_ERROR(Recover());
          continue;  // login not acknowledged; the customer retries later
        }
        PRORP_RETURN_IF_ERROR(s);
        ++result_.accepted_reactive;
        d.outstanding_reactive = true;
      }

      // One iteration of the proactive resume operation.
      Result<uint64_t> ran = plane_->service().RunOnce(now_);
      if (Crashed()) {
        PRORP_RETURN_IF_ERROR(Recover());
      } else if (!ran.ok()) {
        return ran.status();
      }

      PRORP_RETURN_IF_ERROR(DeliverCompletions());

      plane_->service().Pump(now_ + kStep / 2);
      if (Crashed()) PRORP_RETURN_IF_ERROR(Recover());

      Status ck = plane_->MaybeCheckpoint();
      if (Crashed() || ck.code() == StatusCode::kAborted) {
        // An injected crash inside the checkpoint writer is a process
        // death even though the journal stayed healthy: the tmp file is
        // abandoned and the previous checkpoint still rules recovery.
        PRORP_RETURN_IF_ERROR(Recover());
      } else if (!ck.ok()) {
        return ck;
      }
    }

    PRORP_RETURN_IF_ERROR(Drain());

    for (const SimDb& d : dbs_) {
      if (d.outstanding_reactive && !d.resumed) ++result_.lost_reactive;
    }
    result_.accounting_ok = plane_->service().AccountingReconciles();
    result_.incidents = plane_->service().diagnostics().incidents;
    result_.total_resumed = plane_->service().total_resumed();
    result_.last_recovery = plane_->recovery_stats();
    if (!opt_.crash_point.empty()) {
      result_.crash_fired = registry.fired();
      registry.Reset();
    }
    return result_;
  }

 private:
  /// The resume workflow as the node executes it.  Everything here
  /// survives a control-plane crash: the effect (allocating resources) is
  /// on the node, and recovery must reconcile against it.
  Status ResumeCb(const ResumeAttempt& a, EpochSeconds now) {
    SimDb& d = dbs_[a.db];
    if (outage_now_) return Status::Unavailable("resume path outage");
    if (d.resumed) {
      // A non-hedge dispatch re-executing a workflow whose resume already
      // happened is exactly the double-resume recovery must prevent.
      // (Workflows accepted after the resume — enqueued_at beyond
      // resumed_at — are ordinary stale pre-warms, not duplicates.)
      if (!a.hedge && a.enqueued_at <= d.resumed_at) {
        ++result_.duplicate_resumes;
      }
      return Status::FailedPrecondition("already resumed");
    }
    if (!drain_mode_ && fail_rng_.NextBool(0.10)) {
      return Status::Unavailable("transient workflow failure");
    }
    // Effect: the node allocates resources.  The metadata mutation is
    // part of the workflow and journals through the control plane; an
    // injected crash inside it surfaces as Aborted (simulated death).
    d.resumed = true;
    d.resumed_at = now;
    d.pending_completion = now + 30;
    return plane_->metadata().UpsertState(a.db, policy::DbState::kResumed, 0);
  }

  /// Attempts a metadata mutation.  Returns true when acknowledged;
  /// false when the control plane died mid-mutation (already recovered —
  /// the caller decides whether to retry or let the fleet converge later).
  Result<bool> TryUpsert(DbId db, policy::DbState state, EpochSeconds pred) {
    Status s = plane_->metadata().UpsertState(db, state, pred);
    if (Crashed()) {
      PRORP_RETURN_IF_ERROR(Recover());
      return false;
    }
    PRORP_RETURN_IF_ERROR(s);
    return true;
  }

  Status DeliverCompletions() {
    for (int i = 0; i < opt_.num_dbs; ++i) {
      SimDb& d = dbs_[static_cast<size_t>(i)];
      if (d.pending_completion == 0 || d.pending_completion > now_) continue;
      if (!d.resumed) {
        d.pending_completion = 0;  // paused again before delivery
        continue;
      }
      // The node reports the workflow done.  Re-assert the metadata state
      // first: if the crash ate the in-workflow upsert, this repair is
      // how the fleet converges (idempotent when nothing was lost).
      PRORP_ASSIGN_OR_RETURN(
          bool acked, TryUpsert(static_cast<DbId>(i),
                                policy::DbState::kResumed, 0));
      if (!acked) continue;  // not cleared; redelivered next step
      plane_->service().CompleteWorkflow(static_cast<DbId>(i), now_);
      if (Crashed()) {
        PRORP_RETURN_IF_ERROR(Recover());
        continue;
      }
      d.pending_completion = 0;
      d.outstanding_reactive = false;
    }
    return Status::OK();
  }

  /// Runs the clock forward with faults disarmed until every queued and
  /// in-flight workflow resolved (backoffs elapse, the breaker cools
  /// down, storms ramp out).
  Status Drain() {
    drain_mode_ = true;
    outage_now_ = false;
    plane_->journal().set_fault_plan(nullptr);
    for (int iter = 0; iter < 600; ++iter) {
      if (plane_->service().pending_workflows() == 0 &&
          plane_->service().in_flight() == 0) {
        return Status::OK();
      }
      now_ += kStep;
      Result<uint64_t> ran = plane_->service().RunOnce(now_);
      if (Crashed()) {
        PRORP_RETURN_IF_ERROR(Recover());
        plane_->journal().set_fault_plan(nullptr);
        continue;
      }
      if (!ran.ok()) return ran.status();
      PRORP_RETURN_IF_ERROR(DeliverCompletions());
      plane_->service().Pump(now_ + kStep / 2);
      if (Crashed()) {
        PRORP_RETURN_IF_ERROR(Recover());
        plane_->journal().set_fault_plan(nullptr);
      }
    }
    return Status::TimedOut("torture drain did not converge");
  }

  bool Crashed() const { return plane_ == nullptr || !plane_->healthy(); }

  Status Recover() {
    if (result_.recoveries >= opt_.max_recoveries) {
      return Status::ResourceExhausted("too many control-plane recoveries");
    }
    // Conservative-restore check: an open breaker must never recover
    // closed (the window restarts empty; open waits out its cool-down).
    bool was_open =
        plane_->service().breaker_state() == BreakerState::kOpen;
    plane_.reset();
    ++result_.recoveries;
    PRORP_RETURN_IF_ERROR(Reopen(now_));
    if (was_open &&
        plane_->service().breaker_state() == BreakerState::kClosed) {
      result_.breaker_recovered_closed_early = true;
    }
    return Status::OK();
  }

  Status Reopen(EpochSeconds now) {
    DurableControlPlane::Options popt;
    popt.dir = opt_.dir;
    popt.config = TortureConfig(opt_);
    popt.max_attempts = 8;
    popt.checkpoint_every = opt_.checkpoint_every;
    plan_ = nullptr;
    if (opt_.journal_fault_probability > 0) {
      plan_ = std::make_unique<faults::FaultPlan>(
          opt_.seed + 0x1000ull * static_cast<uint64_t>(result_.recoveries));
      // Alternate the failure flavor so both plain I/O errors and ENOSPC
      // fail-stops hit the journal across recoveries.
      faults::FaultKind kind = result_.recoveries % 2 == 0
                                   ? faults::FaultKind::kIoError
                                   : faults::FaultKind::kDiskFull;
      plan_->FailWithProbability(faults::FaultOp::kWalAppend,
                                 opt_.journal_fault_probability, kind);
      plan_->FailWithProbability(faults::FaultOp::kWalSync,
                                 opt_.journal_fault_probability / 2,
                                 faults::FaultKind::kIoError);
    }
    popt.fault_plan = plan_.get();
    for (;;) {
      auto opened = DurableControlPlane::Open(
          popt,
          [this](const ResumeAttempt& a, EpochSeconds t) {
            return ResumeCb(a, t);
          },
          [this](DbId db) { return dbs_[db].resumed; }, now);
      if (opened.ok()) {
        plane_ = std::move(*opened);
        return Status::OK();
      }
      // A crash or journal fault fired inside recovery itself: the
      // journaled reconcile prefix replays on the next attempt.
      if (result_.recoveries >= opt_.max_recoveries) {
        return opened.status();
      }
      ++result_.recoveries;
    }
  }

  const RecoveryTortureOptions& opt_;
  std::vector<SimDb> dbs_;
  std::unique_ptr<DurableControlPlane> plane_;
  std::unique_ptr<faults::FaultPlan> plan_;
  RecoveryTortureResult result_;
  EpochSeconds now_ = kStart;
  bool outage_now_ = false;
  bool drain_mode_ = false;
  Rng rng_;
  Rng fail_rng_;
};

}  // namespace

Result<RecoveryTortureResult> RunRecoveryTorture(
    const RecoveryTortureOptions& options) {
  Harness harness(options);
  return harness.Run();
}

Result<std::map<std::string, uint64_t>> ObserveControlPlaneCrashPoints(
    const RecoveryTortureOptions& options) {
  auto& registry = faults::CrashPointRegistry::Global();
  registry.Reset();
  registry.SetCounting(true);
  RecoveryTortureOptions observe = options;
  observe.crash_point.clear();
  observe.journal_fault_probability = 0;
  Result<RecoveryTortureResult> run = RunRecoveryTorture(observe);
  std::map<std::string, uint64_t> hits;
  for (std::string_view point :
       {faults::kCpJournalPreSync, faults::kCpPostJournalPreApply,
        faults::kCpCheckpointMidWrite, faults::kCpDispatchPreAck}) {
    hits[std::string(point)] = registry.hits(point);
  }
  registry.Reset();
  if (!run.ok()) return run.status();
  return hits;
}

}  // namespace prorp::controlplane
