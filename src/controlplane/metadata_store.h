#ifndef PRORP_CONTROLPLANE_METADATA_STORE_H_
#define PRORP_CONTROLPLANE_METADATA_STORE_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"
#include "policy/lifecycle.h"
#include "sql/ast.h"
#include "sql/database.h"
#include "telemetry/events.h"

namespace prorp::controlplane {

using telemetry::DbId;

class ControlPlaneJournal;

/// One pre-warm the fleet missed while the resume path was degraded: a
/// physically paused database whose predicted activity start fell inside
/// the catch-up window instead of being handled on time.
struct MissedResume {
  DbId db = 0;
  EpochSeconds predicted_start = 0;
};

/// The metadata store of the Management Service: the sys.databases table
/// Algorithm 5 queries (database_id, state, start_of_pred_activity).
///
/// Two query paths are maintained and kept consistent:
///  * the faithful SQL table, scanned exactly per Algorithm 5 lines 2-6
///    (SelectDueForResumeSql), and
///  * an ordered secondary index on (start_of_pred_activity, database_id)
///    restricted to physically paused databases (SelectDueForResume) — the
///    production-grade access path that makes a once-a-minute scan over
///    hundreds of thousands of databases cheap.
/// Property tests assert the two return identical sets.
class MetadataStore {
 public:
  /// Which storage backs the store.  kSqlMirrored (default) maintains
  /// the faithful sys.databases SQL table alongside the in-memory entry
  /// map and resume index.  kIndexOnly drops the SQL mirror — every
  /// query answered from the entry map / index stays bit-identical, but
  /// SelectDueForResumeSql becomes unavailable.  Million-database scale
  /// runs use kIndexOnly: the per-transition SQL upsert dominates the
  /// simulator's hot loop otherwise.
  enum class Backing { kSqlMirrored, kIndexOnly };

  static Result<std::unique_ptr<MetadataStore>> Open(
      Backing backing = Backing::kSqlMirrored);

  MetadataStore(const MetadataStore&) = delete;
  MetadataStore& operator=(const MetadataStore&) = delete;

  /// Records the database's lifecycle state and, when physically paused,
  /// the predicted next-activity start (Algorithm 1 line 31; 0 = none).
  Status UpsertState(DbId db, policy::DbState state,
                     EpochSeconds predicted_start);

  /// Algorithm 5 lines 2-6 over the secondary index: physically paused
  /// databases with now + k <= start_of_pred_activity < now + k + period.
  Result<std::vector<DbId>> SelectDueForResume(EpochSeconds now,
                                               DurationSeconds k,
                                               DurationSeconds period) const;

  /// The same selection as a literal SQL scan of sys.databases.
  Result<std::vector<DbId>> SelectDueForResumeSql(
      EpochSeconds now, DurationSeconds k, DurationSeconds period) const;

  /// Catch-up selection of the storm layer: physically paused databases
  /// whose predicted start lies in [now - lookback, now + k) — i.e. work
  /// the regular sliding window has already passed over (it only ever
  /// looks at [now + k, now + k + period)), typically because the breaker
  /// shed it or the workflow stayed stuck through its window.
  Result<std::vector<MissedResume>> SelectMissedResume(
      EpochSeconds now, DurationSeconds lookback, DurationSeconds k) const;

  /// Whether the database still exists (a queued workflow whose target
  /// was dropped must be retired, not attempted).
  bool Contains(DbId db) const {
    return db < entries_.size() && entries_[db].present;
  }

  /// Deletes the database's row, entry, and index slot (customer dropped
  /// the database).  Deleting an unknown id is a no-op.
  Status Remove(DbId db);

  /// Number of databases currently in the given state.
  uint64_t CountInState(policy::DbState state) const;

  uint64_t size() const { return live_; }

  // --- Durability & recovery (DESIGN.md section 10) ---

  /// Attaches the control-plane journal: every UpsertState/Remove is
  /// journaled (kMetaUpsert/kMetaRemove, stamped with `epoch`) before it
  /// takes effect, and fails without applying if the journal refuses.
  /// nullptr detaches (restore paths apply unjournaled).
  void AttachJournal(ControlPlaneJournal* journal, uint64_t epoch) {
    journal_ = journal;
    epoch_ = epoch;
  }

  /// One exported row for checkpoint serialization, sorted by db id.
  struct ExportedEntry {
    DbId db = 0;
    int32_t state_code = 0;
    EpochSeconds predicted_start = 0;
  };
  std::vector<ExportedEntry> Export() const;

  /// Re-applies a mutation without journaling (checkpoint load and
  /// journal replay — the record is already durable).
  Status RestoreUpsert(DbId db, int32_t state_code,
                       EpochSeconds predicted_start);
  Status RestoreRemove(DbId db) { return ApplyRemove(db); }

 private:
  MetadataStore() = default;

  struct Entry {
    policy::DbState state = policy::DbState::kResumed;
    EpochSeconds predicted_start = 0;
    bool present = false;
  };

  Status ApplyUpsert(DbId db, policy::DbState state,
                     EpochSeconds predicted_start);
  Status ApplyRemove(DbId db);

  /// Null under Backing::kIndexOnly.
  mutable std::unique_ptr<sql::Database> db_;
  sql::Statement insert_stmt_;
  sql::Statement update_stmt_;
  sql::Statement select_due_stmt_;
  sql::Statement delete_stmt_;
  /// Dense by database id (fleet ids are contiguous from 0; a hash map
  /// here was the top cache-miss site of the million-database hot loop).
  /// Slots beyond the live set have present = false.
  std::vector<Entry> entries_;
  uint64_t live_ = 0;
  /// (predicted_start, db) for physically paused databases with a
  /// prediction.
  std::map<std::pair<EpochSeconds, DbId>, bool> resume_index_;
  ControlPlaneJournal* journal_ = nullptr;
  uint64_t epoch_ = 0;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_METADATA_STORE_H_
