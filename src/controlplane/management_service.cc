#include "controlplane/management_service.h"

#include <algorithm>

namespace prorp::controlplane {
namespace {

/// SplitMix64 finalizer: deterministic jitter hash over (db, attempt).
uint64_t JitterHash(DbId db, int attempt) {
  uint64_t h = static_cast<uint64_t>(db) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

ManagementService::ManagementService(MetadataStore* metadata,
                                     ControlPlaneConfig config,
                                     ResumeCallback resume,
                                     int max_attempts)
    : metadata_(metadata),
      config_(config),
      resume_(std::move(resume)),
      max_attempts_(max_attempts) {}

size_t ManagementService::pending_failed() const {
  size_t n = 0;
  for (const WorkItem& item : queue_) {
    if (item.attempts > 0) ++n;
  }
  return n;
}

DurationSeconds ManagementService::BackoffDelay(DbId db, int attempt) const {
  int exp = std::max(0, attempt - 1);
  DurationSeconds delay = config_.retry_backoff_cap;
  // base * 2^exp, saturating at the cap (62 guards the shift overflow).
  if (exp < 62 &&
      config_.retry_backoff_base <= (config_.retry_backoff_cap >> exp)) {
    delay = config_.retry_backoff_base << exp;
  }
  auto jitter_range =
      static_cast<DurationSeconds>(config_.retry_jitter_fraction *
                                   static_cast<double>(delay));
  if (jitter_range > 0) {
    delay += static_cast<DurationSeconds>(
        JitterHash(db, attempt) % static_cast<uint64_t>(jitter_range + 1));
  }
  return delay;
}

void ManagementService::SetBreaker(BreakerState next, EpochSeconds now) {
  if (next == breaker_) return;
  breaker_ = next;
  ++diagnostics_.breaker_state_changes;
  switch (next) {
    case BreakerState::kOpen:
      ++diagnostics_.breaker_opens;
      breaker_opened_at_ = now;
      outcomes_.clear();
      window_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      half_open_successes_ = 0;
      break;
    case BreakerState::kClosed:
      outcomes_.clear();
      window_failures_ = 0;
      break;
  }
}

void ManagementService::RecordOutcome(bool success, EpochSeconds now) {
  outcomes_.push_back(!success);
  if (!success) ++window_failures_;
  while (outcomes_.size() > config_.breaker_window) {
    if (outcomes_.front()) --window_failures_;
    outcomes_.pop_front();
  }
  if (breaker_ == BreakerState::kClosed &&
      outcomes_.size() == config_.breaker_window &&
      static_cast<double>(window_failures_) >=
          config_.breaker_failure_ratio *
              static_cast<double>(config_.breaker_window)) {
    SetBreaker(BreakerState::kOpen, now);
  }
}

Result<uint64_t> ManagementService::RunOnce(EpochSeconds now,
                                            bool use_sql_scan) {
  // Breaker cool-down is virtual-clock based, like everything else here.
  if (breaker_ == BreakerState::kOpen &&
      now >= breaker_opened_at_ + config_.breaker_open_duration) {
    SetBreaker(BreakerState::kHalfOpen, now);
  }
  half_open_probes_issued_ = 0;

  // Step 1: Algorithm 5's selection.
  std::vector<DbId> due;
  if (use_sql_scan) {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResumeSql(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  } else {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResume(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  }
  // Step 2: enqueue one resume workflow per database — unless the breaker
  // is open, in which case fresh work is shed: the database simply stays
  // physically paused and the customer's own login resumes it reactively.
  // Shedding fresh work (rather than queueing it) keeps an outage from
  // building an unbounded backlog of stale pre-warms.
  for (DbId db : due) {
    if (queued_dbs_.count(db) != 0) continue;  // already queued/backing off
    if (breaker_ == BreakerState::kOpen) {
      ++diagnostics_.shed_resumes;
      continue;
    }
    queued_dbs_.insert(db);
    queue_.push_back({db, 0, now});
  }
  ++diagnostics_.observed_iterations;
  diagnostics_.max_queue_depth =
      std::max(diagnostics_.max_queue_depth, queue_.size());

  // Step 3: drain eligible queue entries (Algorithm 5 lines 7-8 with
  // mitigation).  Each queued item is examined at most once per
  // iteration; retries land behind the fixed budget.
  uint64_t resumed = 0;
  size_t budget = queue_.size();
  for (size_t i = 0; i < budget; ++i) {
    WorkItem item = queue_.front();
    queue_.pop_front();
    if (item.not_before > now) {
      queue_.push_back(item);  // still backing off
      continue;
    }
    if (breaker_ == BreakerState::kOpen) {
      queue_.push_back(item);  // held until the breaker half-opens
      continue;
    }
    if (breaker_ == BreakerState::kHalfOpen &&
        half_open_probes_issued_ >= config_.breaker_half_open_probes) {
      queue_.push_back(item);  // probe budget exhausted this iteration
      continue;
    }
    if (breaker_ == BreakerState::kHalfOpen) ++half_open_probes_issued_;

    Status s = resume_(item.db, now);
    if (s.ok()) {
      queued_dbs_.erase(item.db);
      ++resumed;
      if (item.attempts > 0) ++diagnostics_.mitigated;
      if (breaker_ == BreakerState::kHalfOpen) {
        ++half_open_successes_;
        if (half_open_successes_ >= config_.breaker_half_open_probes) {
          SetBreaker(BreakerState::kClosed, now);
        }
      } else {
        RecordOutcome(/*success=*/true, now);
      }
      continue;
    }
    if (s.code() == StatusCode::kFailedPrecondition) {
      // The database is no longer physically paused (it resumed on its
      // own or was already handled): nothing to do.  Breaker-neutral.
      queued_dbs_.erase(item.db);
      ++diagnostics_.skipped_state_changed;
      if (item.attempts > 0) ++diagnostics_.failed_then_skipped;
      continue;
    }
    // Transient workflow failure: the diagnostics runner mitigates by
    // retrying after a capped exponential backoff.
    ++item.attempts;
    if (item.attempts == 1) ++diagnostics_.stuck_workflows;
    if (breaker_ == BreakerState::kHalfOpen) {
      SetBreaker(BreakerState::kOpen, now);  // failed probe: re-open
    } else {
      RecordOutcome(/*success=*/false, now);
    }
    if (item.attempts < max_attempts_) {
      DurationSeconds delay = BackoffDelay(item.db, item.attempts);
      item.not_before = now + delay;
      ++diagnostics_.backoff_retries_scheduled;
      diagnostics_.backoff_delay_seconds_total +=
          static_cast<uint64_t>(delay);
      queue_.push_back(item);
    } else {
      queued_dbs_.erase(item.db);
      ++diagnostics_.incidents;  // mitigation failed -> on-call engineer
    }
  }

  resumed_per_iteration_.Add(static_cast<double>(resumed));
  total_resumed_ += resumed;
  return resumed;
}

}  // namespace prorp::controlplane
