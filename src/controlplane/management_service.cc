#include "controlplane/management_service.h"

namespace prorp::controlplane {

ManagementService::ManagementService(MetadataStore* metadata,
                                     ControlPlaneConfig config,
                                     ResumeCallback resume,
                                     int max_attempts)
    : metadata_(metadata),
      config_(config),
      resume_(std::move(resume)),
      max_attempts_(max_attempts) {}

Result<uint64_t> ManagementService::RunOnce(EpochSeconds now,
                                            bool use_sql_scan) {
  // Step 1: Algorithm 5's selection.
  std::vector<DbId> due;
  if (use_sql_scan) {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResumeSql(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  } else {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResume(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  }
  // Step 2: enqueue one resume workflow per database.
  for (DbId db : due) queue_.push_back({db, 0});
  ++diagnostics_.observed_iterations;
  diagnostics_.max_queue_depth =
      std::max(diagnostics_.max_queue_depth, queue_.size());

  // Step 3: drain the queue (Algorithm 5 lines 7-8 with mitigation).
  uint64_t resumed = 0;
  size_t budget = queue_.size();
  for (size_t i = 0; i < budget; ++i) {
    WorkItem item = queue_.front();
    queue_.pop_front();
    Status s = resume_(item.db, now);
    if (s.ok()) {
      ++resumed;
      continue;
    }
    if (s.code() == StatusCode::kFailedPrecondition) {
      // The database is no longer physically paused (it resumed on its
      // own or was already handled): nothing to do.
      ++diagnostics_.skipped_state_changed;
      continue;
    }
    // Transient workflow failure: the diagnostics runner retries.
    ++item.attempts;
    if (item.attempts == 1) ++diagnostics_.stuck_workflows;
    if (item.attempts < max_attempts_) {
      queue_.push_back(item);
    } else {
      ++diagnostics_.incidents;  // mitigation failed -> on-call engineer
    }
  }
  // Items requeued above get a second chance within the same iteration —
  // the runner "makes sure that these queues drain" (Section 7).
  size_t retry_budget = queue_.size();
  for (size_t i = 0; i < retry_budget; ++i) {
    WorkItem item = queue_.front();
    queue_.pop_front();
    Status s = resume_(item.db, now);
    if (s.ok()) {
      ++resumed;
      ++diagnostics_.mitigated;
      continue;
    }
    if (s.code() == StatusCode::kFailedPrecondition) {
      ++diagnostics_.skipped_state_changed;
      continue;
    }
    ++item.attempts;
    if (item.attempts < max_attempts_) {
      queue_.push_back(item);  // tried again next iteration
    } else {
      ++diagnostics_.incidents;
    }
  }

  resumed_per_iteration_.Add(static_cast<double>(resumed));
  total_resumed_ += resumed;
  return resumed;
}

}  // namespace prorp::controlplane
