#include "controlplane/management_service.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "controlplane/journal.h"
#include "faults/crash_points.h"

namespace prorp::controlplane {

void DiagnosticsReport::Merge(const DiagnosticsReport& other) {
  observed_iterations += other.observed_iterations;
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  stuck_workflows += other.stuck_workflows;
  mitigated += other.mitigated;
  skipped_state_changed += other.skipped_state_changed;
  failed_then_skipped += other.failed_then_skipped;
  failed_then_shed += other.failed_then_shed;
  incidents += other.incidents;
  backoff_retries_scheduled += other.backoff_retries_scheduled;
  backoff_delay_seconds_total += other.backoff_delay_seconds_total;
  shed_resumes += other.shed_resumes;
  breaker_opens += other.breaker_opens;
  breaker_state_changes += other.breaker_state_changes;
  for (size_t c = 0; c < kNumResumeClasses; ++c) {
    ClassDiagnostics& m = per_class[c];
    const ClassDiagnostics& v = other.per_class[c];
    m.enqueued += v.enqueued;
    m.resumed += v.resumed;
    m.shed_admission += v.shed_admission;
    m.shed_evicted += v.shed_evicted;
    m.stuck += v.stuck;
    m.mitigated += v.mitigated;
    m.incidents += v.incidents;
    m.skipped_state_changed += v.skipped_state_changed;
    m.failed_then_skipped += v.failed_then_skipped;
    m.failed_then_shed += v.failed_then_shed;
    m.deadline_breaches += v.deadline_breaches;
    m.hedged += v.hedged;
    m.hedge_wins += v.hedge_wins;
  }
  storms_detected += other.storms_detected;
  slow_start_ticks += other.slow_start_ticks;
  quota_deferrals += other.quota_deferrals;
  catch_up_enqueued += other.catch_up_enqueued;
  deleted_while_queued += other.deleted_while_queued;
  max_brownout_level = std::max(max_brownout_level, other.max_brownout_level);
  unacked_dispatches += other.unacked_dispatches;
  dispatch_timeouts += other.dispatch_timeouts;
  late_acks += other.late_acks;
  stale_epoch_acks += other.stale_epoch_acks;
  node_failovers += other.node_failovers;
  failover_requeues += other.failover_requeues;
  queue_wait.Merge(other.queue_wait);
  in_flight_duration.Merge(other.in_flight_duration);
}

std::string_view BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

std::string_view ResumeClassName(ResumeClass cls) {
  switch (cls) {
    case ResumeClass::kReactiveLogin:
      return "reactive";
    case ResumeClass::kImminentProactive:
      return "imminent";
    case ResumeClass::kSpeculativeProactive:
      return "speculative";
    case ResumeClass::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

ManagementService::ManagementService(MetadataStore* metadata,
                                     ControlPlaneConfig config,
                                     ResumeCallback resume,
                                     int max_attempts)
    : metadata_(metadata),
      config_(config),
      resume_(std::move(resume)),
      max_attempts_(max_attempts),
      storm_ended_at_(std::numeric_limits<EpochSeconds>::min() / 2) {}

ManagementService::ManagementService(MetadataStore* metadata,
                                     ControlPlaneConfig config,
                                     SimpleResumeCallback resume,
                                     int max_attempts)
    : ManagementService(
          metadata, config,
          ResumeCallback([cb = std::move(resume)](const ResumeAttempt& a,
                                                  EpochSeconds now) {
            return cb(a.db, now);
          }),
          max_attempts) {}

size_t ManagementService::pending_workflows() const {
  size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

size_t ManagementService::pending_failed() const {
  size_t n = 0;
  for (const auto& q : queues_) {
    for (const WorkItem& item : q) {
      if (item.attempts > 0) ++n;
    }
  }
  // Unacked dispatches are still open workflows: an item that failed
  // before going on the wire stays an open term of the invariant until
  // its ack (or timeout requeue) resolves it.
  for (const auto& [db, u] : unacked_) {
    if (u.item.attempts > 0) ++n;
  }
  return n;
}

size_t ManagementService::pending_failed(ResumeClass cls) const {
  size_t n = 0;
  for (const WorkItem& item : queues_[Idx(cls)]) {
    if (item.attempts > 0) ++n;
  }
  for (const auto& [db, u] : unacked_) {
    if (u.item.cls == cls && u.item.attempts > 0) ++n;
  }
  return n;
}

bool ManagementService::AccountingReconciles() const {
  const DiagnosticsReport& d = diagnostics_;
  if (d.stuck_workflows != d.mitigated + d.incidents +
                               d.failed_then_skipped + d.failed_then_shed +
                               pending_failed()) {
    return false;
  }
  for (size_t i = 0; i < kNumResumeClasses; ++i) {
    const ClassDiagnostics& c = d.per_class[i];
    if (c.stuck != c.mitigated + c.incidents + c.failed_then_skipped +
                       c.failed_then_shed +
                       pending_failed(static_cast<ResumeClass>(i))) {
      return false;
    }
  }
  return true;
}

DurationSeconds ManagementService::BackoffDelay(DbId db, int attempt) const {
  return common::BackoffDelay(config_.retry_backoff_base,
                              config_.retry_backoff_cap,
                              config_.retry_jitter_fraction,
                              static_cast<uint64_t>(db), attempt);
}

DurationSeconds ManagementService::DeadlineFor(ResumeClass cls) const {
  switch (cls) {
    case ResumeClass::kReactiveLogin:
      return config_.deadline_reactive;
    case ResumeClass::kImminentProactive:
      return config_.deadline_imminent;
    case ResumeClass::kSpeculativeProactive:
      return config_.deadline_speculative;
    case ResumeClass::kMaintenance:
      return config_.deadline_maintenance;
  }
  return config_.deadline_imminent;
}

bool ManagementService::Journal(JournalRecord rec) {
  if (journal_ == nullptr) return true;
  if (fenced_) return false;
  rec.epoch = epoch_;
  Status s = journal_->Append(rec);
  if (!s.ok()) {
    Fence(s);
    return false;
  }
  // The record is durable but its in-memory transition has not been
  // applied yet: a crash here is exactly the window recovery closes by
  // replaying the journal.
  if (Status crash = faults::HitCrashPoint(faults::kCpPostJournalPreApply);
      !crash.ok()) {
    Fence(crash);
    return false;
  }
  return true;
}

void ManagementService::Fence(const Status& status) {
  if (fenced_) return;
  fenced_ = true;
  fence_status_ = status;
}

ManagementService::WorkItem* ManagementService::FindQueued(ResumeClass cls,
                                                           DbId db) {
  for (WorkItem& item : queues_[Idx(cls)]) {
    if (item.db == db) return &item;
  }
  return nullptr;
}

void ManagementService::SetBreaker(BreakerState next, EpochSeconds now) {
  if (next == breaker_) return;
  JournalRecord rec;
  rec.event = JournalEvent::kBreaker;
  rec.cls = static_cast<uint8_t>(next);
  rec.time = now;
  if (!Journal(rec)) return;
  ApplyBreaker(next, now);
}

void ManagementService::ApplyBreaker(BreakerState next, EpochSeconds now) {
  breaker_ = next;
  ++diagnostics_.breaker_state_changes;
  switch (next) {
    case BreakerState::kOpen:
      ++diagnostics_.breaker_opens;
      breaker_opened_at_ = now;
      outcomes_.clear();
      window_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      half_open_successes_ = 0;
      break;
    case BreakerState::kClosed:
      outcomes_.clear();
      window_failures_ = 0;
      break;
  }
}

void ManagementService::RecordOutcome(bool success, EpochSeconds now) {
  outcomes_.push_back(!success);
  if (!success) ++window_failures_;
  while (outcomes_.size() > config_.breaker_window) {
    if (outcomes_.front()) --window_failures_;
    outcomes_.pop_front();
  }
  if (breaker_ == BreakerState::kClosed &&
      outcomes_.size() == config_.breaker_window &&
      static_cast<double>(window_failures_) >=
          config_.breaker_failure_ratio *
              static_cast<double>(config_.breaker_window)) {
    SetBreaker(BreakerState::kOpen, now);
  }
}

size_t ManagementService::NonReactiveQueued() const {
  return queues_[Idx(ResumeClass::kImminentProactive)].size() +
         queues_[Idx(ResumeClass::kSpeculativeProactive)].size() +
         queues_[Idx(ResumeClass::kMaintenance)].size();
}

int ManagementService::ComputeBrownoutLevel() const {
  if (!config_.admission_control_enabled || config_.queue_capacity == 0) {
    return 0;
  }
  double occupancy = static_cast<double>(NonReactiveQueued()) /
                     static_cast<double>(config_.queue_capacity);
  if (occupancy >= config_.brownout_l3) return 3;
  if (occupancy >= config_.brownout_l2) return 2;
  if (occupancy >= config_.brownout_l1) return 1;
  return 0;
}

bool ManagementService::ClassAdmittedAt(ResumeClass cls, int level) const {
  switch (cls) {
    case ResumeClass::kReactiveLogin:
      return true;  // never shed, at any level
    case ResumeClass::kImminentProactive:
      return level < 3;
    case ResumeClass::kSpeculativeProactive:
      return level < 2;
    case ResumeClass::kMaintenance:
      return level < 1;
  }
  return true;
}

bool ManagementService::EvictLowerClass(ResumeClass cls, EpochSeconds now) {
  for (size_t i = kNumResumeClasses; i-- > Idx(cls) + 1;) {
    auto& q = queues_[i];
    if (q.empty()) continue;
    WorkItem victim = q.back();
    JournalRecord rec;
    rec.event = JournalEvent::kEvicted;
    rec.db = victim.db;
    rec.cls = static_cast<uint8_t>(i);
    rec.attempt = victim.attempts;
    rec.time = now;
    if (victim.attempts > 0) rec.flags |= kJfWasFailed;
    if (!Journal(rec)) return false;
    q.pop_back();
    queued_dbs_.erase(victim.db);
    ClassDiagnostics& cd = diagnostics_.per_class[i];
    ++cd.shed_evicted;
    if (victim.attempts > 0) {
      ++cd.failed_then_shed;
      ++diagnostics_.failed_then_shed;
    }
    return true;
  }
  return false;
}

void ManagementService::EnqueueItem(DbId db, ResumeClass cls, EpochSeconds now,
                                    int brownout_level, bool catch_up,
                                    bool failover) {
  WorkItem item;
  item.db = db;
  item.cls = cls;
  item.not_before = now;
  item.enqueued_at = now;
  if (config_.deadline_hedging_enabled) {
    item.deadline = now + DeadlineFor(cls);
  }
  JournalRecord rec;
  rec.event = JournalEvent::kAccepted;
  rec.db = db;
  rec.cls = static_cast<uint8_t>(cls);
  rec.attempt = brownout_level;
  rec.time = now;
  rec.enqueued_at = now;
  rec.deadline = item.deadline;
  if (catch_up) rec.flags |= kJfCatchUp;
  if (failover) {
    // Failover re-placements are reactive-priority but deliberately NOT
    // kJfReactive: replay must not feed them into the storm detector's
    // arrival count.
    rec.flags |= kJfFailover;
  } else if (cls == ResumeClass::kReactiveLogin) {
    rec.flags |= kJfReactive;
  }
  if (!Journal(rec)) return;
  queued_dbs_.emplace(db, cls);
  queues_[Idx(cls)].push_back(item);
  ++Cls(cls).enqueued;
  if (failover) ++diagnostics_.failover_requeues;
}

bool ManagementService::AdmitNonReactive(DbId db, ResumeClass cls,
                                         EpochSeconds now, bool catch_up) {
  if (fenced_) return false;
  // Breaker shed (pre-storm behavior): fresh non-reactive work is dropped
  // rather than queued while the breaker is open, so an outage does not
  // build an unbounded backlog of stale pre-warms.
  if (breaker_ == BreakerState::kOpen) {
    JournalRecord rec;
    rec.event = JournalEvent::kAdmissionShed;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(cls);
    rec.attempt = -1;
    rec.time = now;
    rec.flags |= kJfBreakerShed;
    if (!Journal(rec)) return false;
    ++diagnostics_.shed_resumes;
    ++Cls(cls).shed_admission;
    return false;
  }
  int level = ComputeBrownoutLevel();
  diagnostics_.max_brownout_level =
      std::max(diagnostics_.max_brownout_level, level);
  bool shed = !ClassAdmittedAt(cls, level);
  if (!shed && config_.queue_capacity > 0 &&
      NonReactiveQueued() >= config_.queue_capacity &&
      !EvictLowerClass(cls, now)) {
    if (fenced_) return false;  // eviction fenced mid-journal
    shed = true;
  }
  if (shed) {
    JournalRecord rec;
    rec.event = JournalEvent::kAdmissionShed;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(cls);
    rec.attempt = level;
    rec.time = now;
    if (!Journal(rec)) return false;
    ++Cls(cls).shed_admission;
    return false;
  }
  EnqueueItem(db, cls, now, level, catch_up);
  return !fenced_;
}

void ManagementService::RetireSkipped(const WorkItem& item, bool deleted) {
  JournalRecord rec;
  rec.event = JournalEvent::kRetired;
  rec.db = item.db;
  rec.cls = static_cast<uint8_t>(item.cls);
  rec.attempt = item.attempts;
  if (item.attempts > 0) rec.flags |= kJfWasFailed;
  if (deleted) rec.flags |= kJfDeleted;
  if (!Journal(rec)) return;
  queued_dbs_.erase(item.db);
  ++diagnostics_.skipped_state_changed;
  ++Cls(item.cls).skipped_state_changed;
  if (item.attempts > 0) {
    ++diagnostics_.failed_then_skipped;
    ++Cls(item.cls).failed_then_skipped;
  }
  if (deleted) ++diagnostics_.deleted_while_queued;
}

void ManagementService::PromoteToReactive(DbId db, EpochSeconds now) {
  auto it = queued_dbs_.find(db);
  if (it == queued_dbs_.end() || it->second == ResumeClass::kReactiveLogin) {
    return;
  }
  // The old item is retired through the skipped_state_changed path of its
  // own class (keeping the per-class invariant closed) and a fresh
  // reactive workflow starts.
  auto& q = queues_[Idx(it->second)];
  for (auto qi = q.begin(); qi != q.end(); ++qi) {
    if (qi->db == db) {
      RetireSkipped(*qi);
      if (fenced_) return;
      q.erase(qi);
      break;
    }
  }
  EnqueueItem(db, ResumeClass::kReactiveLogin, now);
}

Status ManagementService::EnqueueReactive(DbId db, EpochSeconds now) {
  if (fenced_) return fence_status_;
  ++reactive_arrivals_;
  if (in_flight_.count(db) != 0) return Status::OK();  // already resuming
  if (auto ua = unacked_.find(db); ua != unacked_.end()) {
    // A dispatch for this database is on the wire with an unknown
    // outcome.  The login is absorbed — NOT journaled as kAccepted:
    // replay-wise the database is still queued (kDispatched without an
    // outcome), so a fresh accept would corrupt replay.  The interest
    // flag makes the resolution paths promote the workflow to reactive.
    ua->second.reactive_interest = true;
    return Status::OK();
  }
  auto it = queued_dbs_.find(db);
  if (it != queued_dbs_.end()) {
    if (it->second == ResumeClass::kReactiveLogin) return Status::OK();
    // Promotion: the customer's login outruns a queued pre-warm of the
    // same database.
    PromoteToReactive(db, now);
    if (fenced_) return fence_status_;
    return Status::OK();
  }
  EnqueueItem(db, ResumeClass::kReactiveLogin, now);
  if (fenced_) return fence_status_;
  return Status::OK();
}

Status ManagementService::NoteNodeDead(uint32_t node, EpochSeconds now) {
  if (fenced_) return fence_status_;
  JournalRecord rec;
  rec.event = JournalEvent::kNodeDead;
  rec.db = node;  // the db field carries the node id for this event
  rec.time = now;
  if (!Journal(rec)) return fence_status_;
  ++diagnostics_.node_failovers;
  return Status::OK();
}

Status ManagementService::EnqueueFailover(DbId db, EpochSeconds now) {
  if (fenced_) return fence_status_;
  // Dedup against every live form the workflow could already have: a
  // failover must never fork a second concurrent workflow for the same
  // database.  In-flight and unacked dispatches resolve through their own
  // paths (timeout/reconcile re-places them), and anything already queued
  // is promoted to reactive priority rather than duplicated.
  if (in_flight_.count(db) != 0) return Status::OK();
  if (auto ua = unacked_.find(db); ua != unacked_.end()) {
    ua->second.reactive_interest = true;
    return Status::OK();
  }
  if (auto it = queued_dbs_.find(db); it != queued_dbs_.end()) {
    if (it->second != ResumeClass::kReactiveLogin) PromoteToReactive(db, now);
    if (fenced_) return fence_status_;
    return Status::OK();
  }
  EnqueueItem(db, ResumeClass::kReactiveLogin, now, /*brownout_level=*/-1,
              /*catch_up=*/false, /*failover=*/true);
  if (fenced_) return fence_status_;
  return Status::OK();
}

Status ManagementService::EnqueueMaintenance(DbId db, EpochSeconds now) {
  if (fenced_) return fence_status_;
  if (queued_dbs_.count(db) != 0 || in_flight_.count(db) != 0 ||
      unacked_.count(db) != 0) {
    return Status::OK();  // a same-or-higher-class workflow already exists
  }
  AdmitNonReactive(db, ResumeClass::kMaintenance, now);
  if (fenced_) return fence_status_;
  return Status::OK();
}

void ManagementService::CompleteWorkflow(DbId db, EpochSeconds now) {
  if (fenced_) return;
  auto it = in_flight_.find(db);
  if (it == in_flight_.end()) return;
  JournalRecord rec;
  rec.event = JournalEvent::kCompleted;
  rec.db = db;
  rec.cls = static_cast<uint8_t>(it->second.cls);
  rec.time = now;
  if (!Journal(rec)) return;
  diagnostics_.in_flight_duration.Add(now - it->second.started);
  in_flight_.erase(it);
}

void ManagementService::NoteLateAck(DbId db) {
  (void)db;
  ++diagnostics_.late_acks;
}

void ManagementService::NoteStaleEpochAck(DbId db) {
  (void)db;
  ++diagnostics_.stale_epoch_acks;
}

void ManagementService::ResolveUnacked(DbId db, UnackedDispatch u,
                                       bool is_hedge, const Status& outcome,
                                       EpochSeconds now) {
  WorkItem& item = u.item;
  ClassDiagnostics& cd = Cls(item.cls);
  const bool hedge_verdict = is_hedge || u.hedge_dispatch;
  if (outcome.ok()) {
    const bool went_async = item.cls == ResumeClass::kReactiveLogin &&
                            config_.deadline_hedging_enabled;
    EpochSeconds effective_deadline =
        item.deadline > 0 ? item.deadline : now + DeadlineFor(item.cls);
    JournalRecord rec;
    rec.event = JournalEvent::kOutcomeOk;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(item.cls);
    rec.attempt = item.attempts + 1;
    rec.time = now;
    rec.deadline = went_async ? effective_deadline : item.deadline;
    if (hedge_verdict) rec.flags |= kJfHedge;
    if (item.attempts > 0) rec.flags |= kJfWasFailed;
    if (went_async) rec.flags |= kJfAsync;
    if (!Journal(rec)) return;  // fenced; recovery reconciles the dispatch
    ++cd.resumed;
    if (item.attempts > 0) {
      ++diagnostics_.mitigated;
      ++cd.mitigated;
    }
    if (hedge_verdict) ++cd.hedge_wins;
    if (item.cls == ResumeClass::kImminentProactive ||
        item.cls == ResumeClass::kSpeculativeProactive) {
      // Folded into the next RunOnce's resumed count (and its journaled
      // kIteration aggregate), keeping the Figure 11 metric and replay
      // exact.
      ++async_resumed_pending_;
    }
    if (u.gated) {
      // Breaker bookkeeping uses the dispatch-time posture (stored at
      // park time): an ack landing after the breaker moved on must not
      // count as a probe it never was.
      if (u.half_open_probe) {
        ++half_open_successes_;
        if (half_open_successes_ >= config_.breaker_half_open_probes) {
          SetBreaker(BreakerState::kClosed, now);
        }
      } else {
        RecordOutcome(/*success=*/true, now);
      }
    }
    if (went_async) {
      InFlightItem f;
      f.cls = item.cls;
      f.attempts = item.attempts + 1;
      f.started = now;
      f.deadline = effective_deadline;
      f.hedged = item.hedged;
      in_flight_[db] = f;
    }
    // A reactive interest noted while unacked is satisfied by the resume
    // itself — the customer's database is up.
    return;
  }
  if (outcome.code() == StatusCode::kFailedPrecondition) {
    // The database is no longer physically paused; retire silently,
    // breaker-neutral, exactly like the synchronous path.
    RetireSkipped(item);
    return;
  }
  // Transient workflow failure reported by the node: mirror the
  // synchronous failure path (backoff retry or incident).
  int new_attempts = item.attempts + 1;
  const bool incident = new_attempts >= max_attempts_;
  DurationSeconds delay = incident ? 0 : BackoffDelay(db, new_attempts);
  JournalRecord rec;
  rec.event = JournalEvent::kOutcomeFailed;
  rec.db = db;
  rec.cls = static_cast<uint8_t>(item.cls);
  rec.attempt = new_attempts;
  rec.time = now;
  if (!incident) rec.not_before = now + delay;
  if (new_attempts == 1) rec.flags |= kJfFirstFailure;
  if (incident) rec.flags |= kJfIncident;
  if (!Journal(rec)) return;
  item.attempts = new_attempts;
  if (item.attempts == 1) {
    ++diagnostics_.stuck_workflows;
    ++cd.stuck;
  }
  if (u.gated) {
    if (u.half_open_probe) {
      SetBreaker(BreakerState::kOpen, now);  // failed probe: re-open
    } else {
      RecordOutcome(/*success=*/false, now);
    }
  }
  if (!incident) {
    item.not_before = now + delay;
    ++diagnostics_.backoff_retries_scheduled;
    diagnostics_.backoff_delay_seconds_total += static_cast<uint64_t>(delay);
    // Replay-consistent: the journal still shows the item queued (its
    // kDispatched never got a terminal outcome until the kOutcomeFailed
    // above), so re-adding it here converges with replay.
    queues_[Idx(item.cls)].push_back(item);
    queued_dbs_.emplace(db, item.cls);
    if (u.reactive_interest && item.cls != ResumeClass::kReactiveLogin) {
      PromoteToReactive(db, now);
    }
  } else {
    ++diagnostics_.incidents;
    ++cd.incidents;
    if (u.reactive_interest) {
      // The login absorbed while unacked still needs a workflow; the db
      // is no longer queued at this point, so a fresh accept is valid.
      EnqueueItem(db, ResumeClass::kReactiveLogin, now);
    }
  }
}

void ManagementService::OnDispatchAck(DbId db, uint64_t request_id,
                                      const Status& outcome,
                                      EpochSeconds now) {
  if (fenced_) return;
  auto it = unacked_.find(db);
  if (it == unacked_.end() || (request_id != it->second.request_id &&
                               request_id != it->second.hedge_request_id)) {
    // The workflow already resolved (hedge win, timeout requeue, previous
    // ack): telemetry only.
    NoteLateAck(db);
    return;
  }
  const bool is_hedge = request_id == it->second.hedge_request_id;
  const bool transient = !outcome.ok() &&
                         outcome.code() != StatusCode::kFailedPrecondition;
  if (transient) {
    // A transient nack from one side of a hedged pair: spend this rid and
    // keep waiting while the other dispatch is still on the wire.
    uint64_t& slot =
        is_hedge ? it->second.hedge_request_id : it->second.request_id;
    slot = 0;
    if (it->second.request_id != 0 || it->second.hedge_request_id != 0) {
      return;
    }
  }
  UnackedDispatch resolved = std::move(it->second);
  unacked_.erase(it);
  ResolveUnacked(db, std::move(resolved), is_hedge, outcome, now);
}

void ManagementService::OnDispatchTimeout(DbId db, uint64_t request_id,
                                          EpochSeconds now) {
  if (fenced_) return;
  auto it = unacked_.find(db);
  if (it == unacked_.end() || (request_id != it->second.request_id &&
                               request_id != it->second.hedge_request_id)) {
    return;  // already resolved; nothing left to time out
  }
  if (request_id == it->second.hedge_request_id) {
    it->second.hedge_request_id = 0;
  } else {
    it->second.request_id = 0;
  }
  if (it->second.request_id != 0 || it->second.hedge_request_id != 0) {
    return;  // the other dispatch of the hedged pair is still live
  }
  ++diagnostics_.dispatch_timeouts;
  // The outcome is UNKNOWN — the node may or may not have executed — so
  // this is NOT a failure: attempts stay unchanged and the item requeues
  // for immediate redispatch (node-side dedup and the executor's
  // state check make that safe).  Deliberately journal-silent: replay's
  // kDispatched already leaves the item queued, which is this exact
  // state.
  UnackedDispatch resolved = std::move(it->second);
  unacked_.erase(it);
  WorkItem item = resolved.item;
  item.not_before = now;
  queues_[Idx(item.cls)].push_back(item);
  queued_dbs_.emplace(db, item.cls);
  if (resolved.reactive_interest &&
      item.cls != ResumeClass::kReactiveLogin) {
    PromoteToReactive(db, now);
  }
}

void ManagementService::Watchdog(EpochSeconds now) {
  if (!config_.deadline_hedging_enabled || fenced_) return;
  for (auto& [db, f] : in_flight_) {
    if (fenced_) break;
    if (f.hedged || now <= f.deadline) continue;
    // Journal the hedge before dispatching it: hedging is bounded at one
    // per workflow, and that bound must hold across a crash — a recovered
    // control plane must never re-hedge a workflow whose hedge already
    // went out.
    JournalRecord rec;
    rec.event = JournalEvent::kHedge;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(f.cls);
    rec.attempt = f.attempts;
    rec.time = now;
    if (!Journal(rec)) break;
    f.hedged = true;
    ClassDiagnostics& cd = Cls(f.cls);
    ++cd.deadline_breaches;
    ++cd.hedged;
    ResumeAttempt attempt;
    attempt.db = db;
    attempt.cls = f.cls;
    attempt.attempt = f.attempts;
    attempt.hedge = true;
    attempt.node_offset = 1;
    attempt.enqueued_at = f.started;
    attempt.request_id = NextRequestId();
    // Best-effort rescue: the original dispatch is still in flight, so a
    // hedge failure changes nothing — the completion (or an incident at a
    // higher layer) still resolves the workflow.
    Status s = resume_(attempt, now);
    if (s.code() == StatusCode::kAborted) {
      // Simulated process death inside the resume path, not a workflow
      // failure.
      Fence(s);
      break;
    }
    if (s.code() == StatusCode::kPending) continue;  // ack decides later
    if (s.ok()) {
      JournalRecord win;
      win.event = JournalEvent::kHedge;
      win.db = db;
      win.cls = static_cast<uint8_t>(f.cls);
      win.time = now;
      win.flags |= kJfHedgeWin;
      if (!Journal(win)) break;
      ++cd.hedge_wins;
    }
  }
  if (fenced_) return;

  // Hedge unacked dispatches past their deadline: the primary request may
  // be delayed or lost in the transport, so one hedge to the secondary
  // node races it.  Node-side dedup and the single-resolution rule below
  // (whichever ack arrives first wins, the loser is a late ack) keep the
  // side effect exactly-once.
  std::vector<DbId> overdue;
  for (const auto& [db, u] : unacked_) {
    if (u.hedge_request_id == 0 && !u.item.hedged && u.item.deadline > 0 &&
        now > u.item.deadline) {
      overdue.push_back(db);
    }
  }
  std::sort(overdue.begin(), overdue.end());
  for (DbId db : overdue) {
    if (fenced_) break;
    auto it = unacked_.find(db);
    if (it == unacked_.end()) continue;  // resolved by an inline hedge ack
    JournalRecord rec;
    rec.event = JournalEvent::kHedge;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(it->second.item.cls);
    rec.attempt = it->second.item.attempts + 1;
    rec.time = now;
    if (!Journal(rec)) break;
    it->second.item.hedged = true;
    ClassDiagnostics& cd = Cls(it->second.item.cls);
    ++cd.deadline_breaches;
    ++cd.hedged;
    ResumeAttempt attempt;
    attempt.db = db;
    attempt.cls = it->second.item.cls;
    attempt.attempt = it->second.item.attempts + 1;
    attempt.hedge = true;
    attempt.node_offset = 1;
    attempt.enqueued_at = it->second.item.enqueued_at;
    attempt.request_id = NextRequestId();
    it->second.hedge_request_id = attempt.request_id;
    Status s = resume_(attempt, now);
    if (s.code() == StatusCode::kAborted) {
      Fence(s);
      break;
    }
    if (s.code() == StatusCode::kPending) continue;  // races the original
    // Inline hedge verdict (fault-free path to the secondary node).  A
    // success or a state-changed resolves the workflow as the hedge's
    // outcome; a transient hedge failure changes nothing — the original
    // dispatch is still on the wire.
    it = unacked_.find(db);
    if (it == unacked_.end()) continue;
    if (s.ok() || s.code() == StatusCode::kFailedPrecondition) {
      UnackedDispatch u = std::move(it->second);
      unacked_.erase(it);
      ResolveUnacked(db, std::move(u), /*is_hedge=*/true, s, now);
    } else {
      // Transient inline hedge nack: the hedge rid is already settled on
      // the dispatcher side, so the slot must be spent here — leaving it
      // set would make the original's eventual timeout wait forever on a
      // hedge ack that can never arrive.
      it->second.hedge_request_id = 0;
      if (it->second.request_id == 0) {
        UnackedDispatch u = std::move(it->second);
        unacked_.erase(it);
        ResolveUnacked(db, std::move(u), /*is_hedge=*/true, s, now);
      }
    }
  }
}

void ManagementService::MaybeStartStorm(EpochSeconds now) {
  if (storm_active_ || fenced_) return;
  // Cooldown: draining the recovery backlog (and the breaker closing
  // afterwards) must not re-trigger the detector.
  if (now < storm_ended_at_ + config_.storm_cooldown) return;
  JournalRecord rec;
  rec.event = JournalEvent::kStormStart;
  rec.time = now;
  if (!Journal(rec)) return;
  storm_active_ = true;
  ++storm_seq_;
  ramp_step_ = 0;
  ++diagnostics_.storms_detected;
  if (config_.catch_up_enabled) CatchUpSweep(now);
}

void ManagementService::CatchUpSweep(EpochSeconds now) {
  auto missed = metadata_->SelectMissedResume(now, config_.catch_up_lookback,
                                              config_.prewarm_interval);
  if (!missed.ok()) return;  // sweep is best-effort
  for (const MissedResume& m : *missed) {
    if (fenced_) break;
    if (queued_dbs_.count(m.db) != 0 || in_flight_.count(m.db) != 0 ||
        unacked_.count(m.db) != 0) {
      continue;
    }
    // A start still ahead is imminent work; one already passed is a
    // speculative catch-up (the customer may long since have moved on —
    // these are the attempts that land in skipped_state_changed).
    ResumeClass cls = m.predicted_start < now
                          ? ResumeClass::kSpeculativeProactive
                          : ResumeClass::kImminentProactive;
    if (AdmitNonReactive(m.db, cls, now, /*catch_up=*/true)) {
      ++diagnostics_.catch_up_enqueued;
    }
  }
}

uint64_t ManagementService::DrainClass(ResumeClass cls, EpochSeconds now,
                                       uint64_t* quota) {
  auto& q = queues_[Idx(cls)];
  const bool gated = cls != ResumeClass::kReactiveLogin;
  uint64_t resumed = 0;
  // Each queued item is examined at most once per drain; retries land
  // behind the fixed budget.
  size_t budget = q.size();
  for (size_t i = 0; i < budget; ++i) {
    if (fenced_) break;
    WorkItem item = q.front();
    q.pop_front();
    if (!metadata_->Contains(item.db)) {
      // Deleted while queued: the workflow has no target any more.
      RetireSkipped(item, /*deleted=*/true);
      continue;
    }
    bool hedge_now = config_.deadline_hedging_enabled && !item.hedged &&
                     item.deadline > 0 && now > item.deadline;
    if (item.not_before > now && !hedge_now) {
      q.push_back(item);  // still backing off
      continue;
    }
    // The single hedge bypasses backoff, breaker, and quota: it is the
    // deadline-rescue path, bounded at one per workflow.
    if (gated && !hedge_now) {
      if (breaker_ == BreakerState::kOpen) {
        q.push_back(item);  // held until the breaker half-opens
        continue;
      }
      if (breaker_ == BreakerState::kHalfOpen &&
          half_open_probes_issued_ >= config_.breaker_half_open_probes) {
        q.push_back(item);  // probe budget exhausted this iteration
        continue;
      }
      if (quota != nullptr && *quota == 0) {
        ++diagnostics_.quota_deferrals;
        q.push_back(item);  // slow-start quota exhausted this iteration
        continue;
      }
      if (quota != nullptr) --*quota;
      if (breaker_ == BreakerState::kHalfOpen) ++half_open_probes_issued_;
    }
    ClassDiagnostics& cd = Cls(item.cls);
    // Journal the dispatch before the callback runs: a crash between the
    // two leaves a dispatched-but-unacked workflow, the one case recovery
    // must reconcile against the node instead of deciding alone.
    {
      JournalRecord rec;
      rec.event = JournalEvent::kDispatched;
      rec.db = item.db;
      rec.cls = static_cast<uint8_t>(item.cls);
      rec.attempt = item.attempts + 1;
      rec.time = now;
      rec.enqueued_at = item.enqueued_at;
      rec.deadline = item.deadline;
      if (hedge_now) rec.flags |= kJfHedge;
      if (!item.wait_recorded) rec.flags |= kJfFirstWait;
      if (!Journal(rec)) {
        q.push_front(item);
        break;
      }
    }
    if (hedge_now) {
      item.hedged = true;
      ++cd.deadline_breaches;
      ++cd.hedged;
    }
    if (!item.wait_recorded) {
      diagnostics_.queue_wait.Add(now - item.enqueued_at);
      item.wait_recorded = true;
    }
    ResumeAttempt attempt;
    attempt.db = item.db;
    attempt.cls = item.cls;
    attempt.attempt = item.attempts + 1;
    attempt.hedge = hedge_now;
    attempt.node_offset = hedge_now ? 1 : 0;
    attempt.enqueued_at = item.enqueued_at;
    attempt.request_id = NextRequestId();
    Status s = resume_(attempt, now);
    if (s.code() == StatusCode::kAborted) {
      // An injected crash fired inside the resume path (e.g. a journaled
      // metadata mutation died): simulated process death, not a workflow
      // failure.
      Fence(s);
      q.push_front(item);
      break;
    }
    if (journal_ != nullptr) {
      // The callback's side effect may exist on the node, but the outcome
      // has not been journaled: dying here is the double-resume hazard.
      if (Status crash = faults::HitCrashPoint(faults::kCpDispatchPreAck);
          !crash.ok()) {
        Fence(crash);
        q.push_front(item);
        break;
      }
    }
    if (s.code() == StatusCode::kPending) {
      // The dispatch is on the wire with its outcome deferred; it parks
      // in the unacked set until OnDispatchAck / OnDispatchTimeout.
      // Journal-wise nothing more is needed: the kDispatched above
      // without an outcome IS the unacked state, and a crash here leaves
      // exactly what FinishRecovery reconciles against the node.
      UnackedDispatch u;
      u.item = item;
      u.request_id = attempt.request_id;
      u.sent_at = now;
      u.gated = gated && !hedge_now;
      u.half_open_probe = u.gated && breaker_ == BreakerState::kHalfOpen;
      u.hedge_dispatch = hedge_now;
      unacked_.emplace(item.db, std::move(u));
      queued_dbs_.erase(item.db);
      ++diagnostics_.unacked_dispatches;
      continue;
    }
    if (s.ok()) {
      const bool went_async = cls == ResumeClass::kReactiveLogin &&
                              config_.deadline_hedging_enabled;
      EpochSeconds effective_deadline =
          item.deadline > 0 ? item.deadline : now + DeadlineFor(item.cls);
      JournalRecord rec;
      rec.event = JournalEvent::kOutcomeOk;
      rec.db = item.db;
      rec.cls = static_cast<uint8_t>(item.cls);
      rec.attempt = item.attempts + 1;
      rec.time = now;
      rec.deadline = went_async ? effective_deadline : item.deadline;
      if (hedge_now) rec.flags |= kJfHedge;
      if (item.attempts > 0) rec.flags |= kJfWasFailed;
      if (went_async) rec.flags |= kJfAsync;
      if (!Journal(rec)) {
        q.push_front(item);
        break;
      }
      queued_dbs_.erase(item.db);
      ++resumed;
      ++cd.resumed;
      if (item.attempts > 0) {
        ++diagnostics_.mitigated;
        ++cd.mitigated;
      }
      if (hedge_now) ++cd.hedge_wins;
      if (gated && !hedge_now) {
        if (breaker_ == BreakerState::kHalfOpen) {
          ++half_open_successes_;
          if (half_open_successes_ >= config_.breaker_half_open_probes) {
            SetBreaker(BreakerState::kClosed, now);
          }
        } else {
          RecordOutcome(/*success=*/true, now);
        }
      }
      if (went_async) {
        // Resources arrive asynchronously; the watchdog guards the wait.
        InFlightItem f;
        f.cls = item.cls;
        f.attempts = item.attempts + 1;
        f.started = now;
        f.deadline = effective_deadline;
        f.hedged = item.hedged;
        in_flight_[item.db] = f;
      }
      continue;
    }
    if (s.code() == StatusCode::kFailedPrecondition) {
      // The database is no longer physically paused (it resumed on its
      // own or was already handled): nothing to do.  Breaker-neutral.
      RetireSkipped(item);
      continue;
    }
    // Transient workflow failure: the diagnostics runner mitigates by
    // retrying after a capped exponential backoff.
    {
      int new_attempts = item.attempts + 1;
      const bool incident = new_attempts >= max_attempts_;
      DurationSeconds delay =
          incident ? 0 : BackoffDelay(item.db, new_attempts);
      JournalRecord rec;
      rec.event = JournalEvent::kOutcomeFailed;
      rec.db = item.db;
      rec.cls = static_cast<uint8_t>(item.cls);
      rec.attempt = new_attempts;
      rec.time = now;
      if (!incident) rec.not_before = now + delay;
      if (new_attempts == 1) rec.flags |= kJfFirstFailure;
      if (incident) rec.flags |= kJfIncident;
      if (!Journal(rec)) {
        q.push_front(item);
        break;
      }
      item.attempts = new_attempts;
      if (item.attempts == 1) {
        ++diagnostics_.stuck_workflows;
        ++cd.stuck;
      }
      if (gated && !hedge_now) {
        if (breaker_ == BreakerState::kHalfOpen) {
          SetBreaker(BreakerState::kOpen, now);  // failed probe: re-open
        } else {
          RecordOutcome(/*success=*/false, now);
        }
      }
      if (!incident) {
        item.not_before = now + delay;
        ++diagnostics_.backoff_retries_scheduled;
        diagnostics_.backoff_delay_seconds_total +=
            static_cast<uint64_t>(delay);
        q.push_back(item);
      } else {
        queued_dbs_.erase(item.db);
        ++diagnostics_.incidents;  // mitigation failed -> on-call engineer
        ++cd.incidents;
      }
    }
  }
  return resumed;
}

uint64_t ManagementService::Pump(EpochSeconds now) {
  if (fenced_) return 0;
  Watchdog(now);
  return DrainClass(ResumeClass::kReactiveLogin, now, nullptr);
}

Result<uint64_t> ManagementService::RunOnce(EpochSeconds now,
                                            bool use_sql_scan) {
  if (fenced_) return fence_status_;
  // Breaker cool-down is virtual-clock based, like everything else here.
  if (breaker_ == BreakerState::kOpen &&
      now >= breaker_opened_at_ + config_.breaker_open_duration) {
    SetBreaker(BreakerState::kHalfOpen, now);
    if (fenced_) return fence_status_;
    // Recovery signal: a healed resume path facing a held backlog is the
    // classic post-outage thundering herd.
    if (config_.StormControlEnabled() && config_.storm_recovery_backlog > 0 &&
        NonReactiveQueued() >= config_.storm_recovery_backlog) {
      MaybeStartStorm(now);
    }
    // Recovery sweep: pre-warms that came due while the breaker was open
    // were shed at admission, so an ongoing storm re-sweeps them now that
    // the path is probing again (duplicate-safe; outside a storm the
    // normal selection window takes over).
    if (storm_active_ && config_.catch_up_enabled) CatchUpSweep(now);
    if (fenced_) return fence_status_;
  }
  half_open_probes_issued_ = 0;

  // Step 1: Algorithm 5's selection.
  std::vector<DbId> due;
  if (use_sql_scan) {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResumeSql(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  } else {
    PRORP_ASSIGN_OR_RETURN(
        due, metadata_->SelectDueForResume(
                 now, config_.prewarm_interval,
                 config_.resume_operation_period));
  }
  // Detector signals observed since the last iteration.
  uint64_t reactive_spike = reactive_arrivals_;
  reactive_arrivals_ = 0;
  if (config_.StormControlEnabled()) {
    if (config_.storm_due_burst_threshold > 0 &&
        due.size() >= config_.storm_due_burst_threshold) {
      MaybeStartStorm(now);
    }
    if (config_.storm_login_spike_threshold > 0 &&
        reactive_spike >= config_.storm_login_spike_threshold) {
      MaybeStartStorm(now);
    }
  }
  if (fenced_) return fence_status_;
  // Step 2: enqueue one resume workflow per due database.  Selection only
  // returns predicted starts at or beyond now + k, so fresh selection
  // work is always imminent-class; speculative items enter through the
  // catch-up sweep.
  for (DbId db : due) {
    if (fenced_) return fence_status_;
    if (in_flight_.count(db) != 0) continue;  // already being resumed
    if (unacked_.count(db) != 0) continue;    // dispatch already on the wire
    auto it = queued_dbs_.find(db);
    if (it != queued_dbs_.end()) {
      if (Idx(it->second) <= Idx(ResumeClass::kImminentProactive)) {
        continue;  // already queued at the same or a higher class
      }
      // Class upgrade: a maintenance touch or speculative catch-up queued
      // for this database must not swallow its due pre-warm — the
      // selection window only passes over each database once, so a
      // skipped enqueue here would silently lose the pre-warm.  The old
      // item retires through its own class (keeping the per-class
      // invariant closed) and a fresh imminent workflow is admitted.
      auto& q = queues_[Idx(it->second)];
      for (auto qi = q.begin(); qi != q.end(); ++qi) {
        if (qi->db == db) {
          RetireSkipped(*qi);
          if (fenced_) return fence_status_;
          q.erase(qi);
          break;
        }
      }
    }
    AdmitNonReactive(db, ResumeClass::kImminentProactive, now);
  }
  if (fenced_) return fence_status_;
  ++diagnostics_.observed_iterations;
  diagnostics_.max_queue_depth =
      std::max(diagnostics_.max_queue_depth, pending_workflows());

  // Slow-start ramp: while a storm is active and admission control is
  // on, non-reactive drains share an exponentially growing quota (the
  // same capped-exponential + jitter schedule as the retry backoff,
  // growing instead of delaying).
  uint64_t quota_value = 0;
  uint64_t* quota = nullptr;
  if (storm_active_ && config_.admission_control_enabled) {
    quota_value = static_cast<uint64_t>(common::WithJitter(
        common::CappedExponential(
            static_cast<int64_t>(config_.slow_start_initial_quota),
            static_cast<int64_t>(config_.slow_start_quota_cap), ramp_step_),
        config_.slow_start_jitter_fraction, storm_seq_,
        static_cast<uint64_t>(ramp_step_)));
    ++ramp_step_;
    ++diagnostics_.slow_start_ticks;
    quota = &quota_value;
  }
  quota_this_iteration_ = quota != nullptr ? quota_value : 0;

  // Step 3: deadline watchdog, then drain in strict class order —
  // reactive logins first and ungated, then the gated classes.
  Watchdog(now);
  DrainClass(ResumeClass::kReactiveLogin, now, nullptr);
  // Proactive successes acked asynchronously since the last iteration
  // fold into this one's count, so the journaled aggregate stays exact.
  uint64_t resumed = async_resumed_pending_;
  async_resumed_pending_ = 0;
  resumed += DrainClass(ResumeClass::kImminentProactive, now, quota) +
             DrainClass(ResumeClass::kSpeculativeProactive, now, quota);
  DrainClass(ResumeClass::kMaintenance, now, quota);
  if (fenced_) return fence_status_;

  // A storm ends when the non-reactive backlog has fully drained; the
  // cooldown then keeps the tail of the recovery from re-triggering it.
  if (storm_active_ && NonReactiveQueued() == 0) {
    JournalRecord rec;
    rec.event = JournalEvent::kStormEnd;
    rec.time = now;
    if (!Journal(rec)) return fence_status_;
    storm_active_ = false;
    storm_ended_at_ = now;
    quota_this_iteration_ = 0;
  }

  // Iteration aggregates are journaled as absolutes so replay is
  // idempotent; a fence mid-iteration loses only this iteration's
  // aggregate sample, never an accounted workflow.
  {
    JournalRecord rec;
    rec.event = JournalEvent::kIteration;
    rec.time = now;
    rec.stats[0] = resumed;
    rec.stats[1] = static_cast<uint64_t>(diagnostics_.max_queue_depth);
    rec.stats[2] = diagnostics_.quota_deferrals;
    rec.stats[3] = quota_this_iteration_;
    if (quota != nullptr) rec.flags |= kJfSlowStart;
    if (!Journal(rec)) return fence_status_;
  }
  resumed_per_iteration_.Add(static_cast<double>(resumed));
  total_resumed_ += resumed;
  return resumed;
}

Status ManagementService::ApplyForRecovery(const JournalRecord& rec) {
  const ResumeClass cls = static_cast<ResumeClass>(rec.cls);
  switch (rec.event) {
    case JournalEvent::kEpochStart:
    case JournalEvent::kMetaUpsert:
    case JournalEvent::kMetaRemove:
      // Epoch tracking and metadata records are applied by the owner
      // (DurableControlPlane), not the service.
      return Status::OK();
    case JournalEvent::kAccepted: {
      if (queued_dbs_.count(rec.db) != 0) {
        return Status::Corruption(
            "journal replay: kAccepted for an already-queued database");
      }
      WorkItem item;
      item.db = rec.db;
      item.cls = cls;
      item.not_before = rec.time;
      item.enqueued_at = rec.enqueued_at;
      item.deadline = rec.deadline;
      queued_dbs_.emplace(rec.db, cls);
      queues_[Idx(cls)].push_back(item);
      ++Cls(cls).enqueued;
      if ((rec.flags & kJfCatchUp) != 0) ++diagnostics_.catch_up_enqueued;
      if ((rec.flags & kJfReactive) != 0) ++reactive_arrivals_;
      if ((rec.flags & kJfFailover) != 0) ++diagnostics_.failover_requeues;
      if (rec.attempt > 0) {
        diagnostics_.max_brownout_level =
            std::max(diagnostics_.max_brownout_level, rec.attempt);
      }
      return Status::OK();
    }
    case JournalEvent::kNodeDead:
      ++diagnostics_.node_failovers;
      return Status::OK();
    case JournalEvent::kAdmissionShed: {
      if ((rec.flags & kJfBreakerShed) != 0) ++diagnostics_.shed_resumes;
      ++Cls(cls).shed_admission;
      if (rec.attempt > 0) {
        diagnostics_.max_brownout_level =
            std::max(diagnostics_.max_brownout_level, rec.attempt);
      }
      return Status::OK();
    }
    case JournalEvent::kEvicted: {
      auto& q = queues_[Idx(cls)];
      for (auto qi = q.end(); qi != q.begin();) {
        --qi;
        if (qi->db != rec.db) continue;
        q.erase(qi);
        break;
      }
      queued_dbs_.erase(rec.db);
      ++Cls(cls).shed_evicted;
      if ((rec.flags & kJfWasFailed) != 0) {
        ++Cls(cls).failed_then_shed;
        ++diagnostics_.failed_then_shed;
      }
      return Status::OK();
    }
    case JournalEvent::kRetired: {
      auto& q = queues_[Idx(cls)];
      for (auto qi = q.begin(); qi != q.end(); ++qi) {
        if (qi->db != rec.db) continue;
        q.erase(qi);
        break;
      }
      queued_dbs_.erase(rec.db);
      recovery_pending_.erase(rec.db);
      ++diagnostics_.skipped_state_changed;
      ++Cls(cls).skipped_state_changed;
      if ((rec.flags & kJfWasFailed) != 0) {
        ++diagnostics_.failed_then_skipped;
        ++Cls(cls).failed_then_skipped;
      }
      if ((rec.flags & kJfDeleted) != 0) ++diagnostics_.deleted_while_queued;
      return Status::OK();
    }
    case JournalEvent::kDispatched: {
      WorkItem* item = FindQueued(cls, rec.db);
      if (item == nullptr) {
        return Status::Corruption(
            "journal replay: kDispatched for a database not queued");
      }
      if ((rec.flags & kJfFirstWait) != 0) {
        diagnostics_.queue_wait.Add(rec.time - rec.enqueued_at);
        item->wait_recorded = true;
      }
      if ((rec.flags & kJfHedge) != 0) {
        item->hedged = true;
        ++Cls(cls).deadline_breaches;
        ++Cls(cls).hedged;
      }
      recovery_pending_[rec.db] = cls;
      return Status::OK();
    }
    case JournalEvent::kOutcomeOk:
      ReplaySuccess(rec, (rec.flags & kJfAsync) != 0);
      return Status::OK();
    case JournalEvent::kOutcomeFailed: {
      recovery_pending_.erase(rec.db);
      ClassDiagnostics& cd = Cls(cls);
      if ((rec.flags & kJfFirstFailure) != 0) {
        ++diagnostics_.stuck_workflows;
        ++cd.stuck;
      }
      auto& q = queues_[Idx(cls)];
      if ((rec.flags & kJfIncident) != 0) {
        for (auto qi = q.begin(); qi != q.end(); ++qi) {
          if (qi->db != rec.db) continue;
          q.erase(qi);
          break;
        }
        queued_dbs_.erase(rec.db);
        ++diagnostics_.incidents;
        ++cd.incidents;
      } else if (WorkItem* item = FindQueued(cls, rec.db); item != nullptr) {
        item->attempts = rec.attempt;
        item->not_before = rec.not_before;
        ++diagnostics_.backoff_retries_scheduled;
        diagnostics_.backoff_delay_seconds_total +=
            static_cast<uint64_t>(rec.not_before - rec.time);
      }
      return Status::OK();
    }
    case JournalEvent::kHedge: {
      if ((rec.flags & kJfHedgeWin) != 0) {
        ++Cls(cls).hedge_wins;
        return Status::OK();
      }
      auto it = in_flight_.find(rec.db);
      if (it != in_flight_.end()) {
        it->second.hedged = true;
        ++Cls(cls).deadline_breaches;
        ++Cls(cls).hedged;
      } else if (WorkItem* item = FindQueued(cls, rec.db); item != nullptr) {
        // A watchdog hedge of an unacked dispatch: replay-wise the item
        // is still queued (kDispatched without an outcome).  Restoring
        // the hedged bit keeps the one-hedge-per-workflow bound across a
        // crash.
        item->hedged = true;
        ++Cls(cls).deadline_breaches;
        ++Cls(cls).hedged;
      }
      return Status::OK();
    }
    case JournalEvent::kCompleted: {
      auto it = in_flight_.find(rec.db);
      if (it != in_flight_.end()) {
        diagnostics_.in_flight_duration.Add(rec.time - it->second.started);
        in_flight_.erase(it);
      }
      return Status::OK();
    }
    case JournalEvent::kBreaker:
      ApplyBreaker(static_cast<BreakerState>(rec.cls), rec.time);
      return Status::OK();
    case JournalEvent::kStormStart:
      storm_active_ = true;
      ++storm_seq_;
      ramp_step_ = 0;
      ++diagnostics_.storms_detected;
      return Status::OK();
    case JournalEvent::kStormEnd:
      storm_active_ = false;
      storm_ended_at_ = rec.time;
      quota_this_iteration_ = 0;
      return Status::OK();
    case JournalEvent::kIteration:
      ++diagnostics_.observed_iterations;
      diagnostics_.max_queue_depth = std::max(
          diagnostics_.max_queue_depth, static_cast<size_t>(rec.stats[1]));
      diagnostics_.quota_deferrals = rec.stats[2];
      if ((rec.flags & kJfSlowStart) != 0) {
        ++diagnostics_.slow_start_ticks;
        ++ramp_step_;
      }
      resumed_per_iteration_.Add(static_cast<double>(rec.stats[0]));
      total_resumed_ += rec.stats[0];
      quota_this_iteration_ = rec.stats[3];
      reactive_arrivals_ = 0;
      return Status::OK();
    case JournalEvent::kReconcileComplete:
      ReplaySuccess(rec, /*async=*/false);
      return Status::OK();
    case JournalEvent::kReconcileRequeue: {
      recovery_pending_.erase(rec.db);
      if ((rec.flags & kJfAsync) != 0) {
        // An in-flight resume the node lost: a fresh reactive workflow
        // was started for the still-waiting customer.
        in_flight_.erase(rec.db);
        if (queued_dbs_.count(rec.db) == 0) {
          WorkItem item;
          item.db = rec.db;
          item.cls = ResumeClass::kReactiveLogin;
          item.not_before = rec.time;
          item.enqueued_at = rec.enqueued_at;
          item.deadline = rec.deadline;
          queued_dbs_.emplace(rec.db, ResumeClass::kReactiveLogin);
          queues_[Idx(ResumeClass::kReactiveLogin)].push_back(item);
          ++Cls(ResumeClass::kReactiveLogin).enqueued;
        }
      } else if (WorkItem* item = FindQueued(cls, rec.db); item != nullptr) {
        item->not_before = rec.time;
      }
      return Status::OK();
    }
  }
  return Status::Corruption("journal replay: unknown event type");
}

void ManagementService::ReplaySuccess(const JournalRecord& rec, bool async) {
  const ResumeClass cls = static_cast<ResumeClass>(rec.cls);
  recovery_pending_.erase(rec.db);
  bool hedged = false;
  auto& q = queues_[Idx(cls)];
  for (auto qi = q.begin(); qi != q.end(); ++qi) {
    if (qi->db != rec.db) continue;
    hedged = qi->hedged;
    q.erase(qi);
    break;
  }
  queued_dbs_.erase(rec.db);
  ClassDiagnostics& cd = Cls(cls);
  ++cd.resumed;
  if ((rec.flags & kJfWasFailed) != 0) {
    ++diagnostics_.mitigated;
    ++cd.mitigated;
  }
  if ((rec.flags & kJfHedge) != 0) ++cd.hedge_wins;
  if (async) {
    InFlightItem f;
    f.cls = cls;
    f.attempts = rec.attempt;
    f.started = rec.time;
    f.deadline = rec.deadline;
    f.hedged = hedged || (rec.flags & kJfHedge) != 0;
    in_flight_[rec.db] = f;
  }
}

ManagementService::ReconcileStats ManagementService::FinishRecovery(
    const std::function<bool(DbId)>& node_resumed, EpochSeconds now) {
  ReconcileStats stats;
  // Deterministic reconcile order, so a crash during recovery replays the
  // same prefix of decisions on the next attempt.
  std::vector<std::pair<DbId, ResumeClass>> pending(recovery_pending_.begin(),
                                                    recovery_pending_.end());
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [db, cls] : pending) {
    if (fenced_) break;
    WorkItem* item = FindQueued(cls, db);
    if (item == nullptr) {
      recovery_pending_.erase(db);
      continue;
    }
    if (node_resumed(db)) {
      // The dispatch went through before the crash; acknowledging it now
      // (instead of re-dispatching) is what keeps resumes exactly-once.
      JournalRecord rec;
      rec.event = JournalEvent::kReconcileComplete;
      rec.db = db;
      rec.cls = static_cast<uint8_t>(cls);
      rec.attempt = item->attempts + 1;
      rec.time = now;
      if (item->attempts > 0) rec.flags |= kJfWasFailed;
      if (!Journal(rec)) break;
      ReplaySuccess(rec, /*async=*/false);
      ++stats.completed;
    } else {
      // The dispatch never reached the node: requeue, attempts unchanged.
      JournalRecord rec;
      rec.event = JournalEvent::kReconcileRequeue;
      rec.db = db;
      rec.cls = static_cast<uint8_t>(cls);
      rec.attempt = item->attempts;
      rec.time = now;
      if (!Journal(rec)) break;
      item->not_before = now;
      recovery_pending_.erase(db);
      ++stats.requeued;
    }
  }
  if (!fenced_) recovery_pending_.clear();

  // In-flight workflows whose node no longer shows the resume: the
  // customer is still waiting, so a fresh reactive workflow starts (the
  // original workflow's accounting closed at its success).
  std::vector<DbId> lost;
  for (const auto& [db, f] : in_flight_) {
    if (!node_resumed(db)) lost.push_back(db);
  }
  std::sort(lost.begin(), lost.end());
  for (DbId db : lost) {
    if (fenced_) break;
    JournalRecord rec;
    rec.event = JournalEvent::kReconcileRequeue;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(ResumeClass::kReactiveLogin);
    rec.time = now;
    rec.enqueued_at = now;
    rec.flags |= kJfAsync;
    if (config_.deadline_hedging_enabled) {
      rec.deadline = now + DeadlineFor(ResumeClass::kReactiveLogin);
    }
    if (!Journal(rec)) break;
    in_flight_.erase(db);
    if (queued_dbs_.count(db) == 0) {
      WorkItem item;
      item.db = db;
      item.cls = ResumeClass::kReactiveLogin;
      item.not_before = now;
      item.enqueued_at = now;
      item.deadline = rec.deadline;
      queued_dbs_.emplace(db, ResumeClass::kReactiveLogin);
      queues_[Idx(ResumeClass::kReactiveLogin)].push_back(item);
      ++Cls(ResumeClass::kReactiveLogin).enqueued;
    }
    ++stats.in_flight_requeued;
  }

  // Conservative degradation posture: the breaker's outcome window and
  // half-open probe progress are deliberately not journaled — rebuilding
  // them optimistically could let a crash bypass an open breaker.  The
  // journaled breaker STATE is restored exactly (open stays open until
  // its cool-down elapses on the virtual clock); the window restarts
  // empty, half-open progress restarts at zero, and an active storm
  // restarts its slow-start ramp from the first step.
  outcomes_.clear();
  window_failures_ = 0;
  half_open_probes_issued_ = 0;
  half_open_successes_ = 0;
  if (storm_active_) ramp_step_ = 0;
  return stats;
}

}  // namespace prorp::controlplane
