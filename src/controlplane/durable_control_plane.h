#ifndef PRORP_CONTROLPLANE_DURABLE_CONTROL_PLANE_H_
#define PRORP_CONTROLPLANE_DURABLE_CONTROL_PLANE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/config.h"
#include "common/result.h"
#include "common/status.h"
#include "controlplane/checkpoint.h"
#include "controlplane/journal.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"
#include "faults/fault_plan.h"

namespace prorp::controlplane {

/// The durable control plane: MetadataStore + ManagementService wired to
/// the write-ahead journal and periodic checkpoints, with an Open() that
/// doubles as Recover() — reopening the directory after a (simulated)
/// control-plane death replays the journal on top of the newest
/// checkpoint, reconciles dispatched-but-unacked workflows against the
/// node state, and resumes service under a fresh epoch (DESIGN.md
/// section 10).
///
/// Recovery guarantees:
///  * no accepted workflow is lost: acceptance is journaled before it is
///    acknowledged, so every acked reactive login survives any crash;
///  * no workflow is double-resumed: a dispatch journaled without an
///    outcome is reconciled against the node (acknowledged if the node
///    shows the resume, requeued if not), never blindly re-sent;
///  * the accounting invariant reconciles exactly after recovery;
///  * replay is idempotent: checkpoints remember the last folded-in
///    journal sequence, and a crash during recovery replays the already
///    journaled reconcile decisions instead of re-deciding them.
class DurableControlPlane {
 public:
  struct Options {
    /// Directory holding journal ("journal.wal") and checkpoint
    /// ("checkpoint.bin"); created if missing.
    std::string dir;
    ControlPlaneConfig config;
    int max_attempts = 3;
    ControlPlaneJournal::SyncMode sync_mode =
        ControlPlaneJournal::SyncMode::kDurable;
    /// Checkpoint automatically (via MaybeCheckpoint) once this many
    /// journal records accumulated past the last checkpoint; 0 = manual
    /// checkpoints only.
    uint64_t checkpoint_every = 256;
    /// Optional fault plan injected into the journal's WAL I/O.
    faults::FaultPlan* fault_plan = nullptr;
  };

  struct RecoveryStats {
    uint64_t epoch = 0;            // incarnation started by this Open
    bool checkpoint_loaded = false;
    uint64_t replayed = 0;         // journal records applied
    uint64_t skipped = 0;          // already folded into the checkpoint
    ManagementService::ReconcileStats reconcile;
  };

  /// Opens (or recovers) the control plane from `options.dir`.
  /// `node_resumed` answers whether a node currently holds the resumed
  /// resources of a database — the oracle reconcile decisions are made
  /// against.  `now` is the virtual-clock recovery time.
  static Result<std::unique_ptr<DurableControlPlane>> Open(
      const Options& options, ManagementService::ResumeCallback resume,
      const std::function<bool(DbId)>& node_resumed, EpochSeconds now);

  DurableControlPlane(const DurableControlPlane&) = delete;
  DurableControlPlane& operator=(const DurableControlPlane&) = delete;

  MetadataStore& metadata() { return *metadata_; }
  ManagementService& service() { return *service_; }
  ControlPlaneJournal& journal() { return *journal_; }
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Serializes the full control-plane state, publishes it atomically,
  /// and truncates the journal.  A crash anywhere inside is safe: the
  /// checkpoint's last_seq makes replay skip folded-in records.
  Status Checkpoint();

  /// Checkpoints when enough journal records accumulated (Options::
  /// checkpoint_every); cheap no-op otherwise.
  Status MaybeCheckpoint();

  /// False once the journal died or the service fenced: the control
  /// plane must be destroyed and recovered via Open().
  bool healthy() const {
    return journal_->healthy() && !service_->fenced();
  }

  const std::string& journal_path() const { return journal_path_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }

  static std::string JournalPathFor(const std::string& dir) {
    return dir + "/journal.wal";
  }
  static std::string CheckpointPathFor(const std::string& dir) {
    return dir + "/checkpoint.bin";
  }

 private:
  DurableControlPlane() = default;

  Options options_;
  std::string journal_path_;
  std::string checkpoint_path_;
  std::unique_ptr<MetadataStore> metadata_;
  std::unique_ptr<ManagementService> service_;
  std::unique_ptr<ControlPlaneJournal> journal_;
  RecoveryStats recovery_stats_;
  uint64_t last_checkpoint_seq_ = 0;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_DURABLE_CONTROL_PLANE_H_
