#include "controlplane/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <vector>

#include "faults/crash_points.h"
#include "storage/crc32.h"
#include "storage/io_util.h"

namespace prorp::controlplane {
namespace {

constexpr uint32_t kCheckpointMagic = 0x5052434a;  // "PRCJ"
// v2 appends the unacked-dispatch section (transport layer).
// v3 appends the failover counters (node health tracker).
constexpr uint32_t kCheckpointVersion = 3;

void PutBytes(std::vector<uint8_t>& out, const void* p, size_t n) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void Put(std::vector<uint8_t>& out, T v) {
  PutBytes(out, &v, sizeof(T));
}

/// Bounds-checked reader over the checkpoint body (the CRC already
/// vouches for integrity; the bounds checks turn version drift into a
/// clean Corruption instead of a wild read).
struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  bool failed = false;

  template <typename T>
  T Get() {
    T v{};
    if (failed || end - p < static_cast<ptrdiff_t>(sizeof(T))) {
      failed = true;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    return v;
  }
};

Status SyncStream(FILE* f) {
  if (std::fflush(f) != 0) return Status::IoError("fflush failed");
  if (::fsync(::fileno(f)) != 0) return Status::IoError("fsync failed");
  return Status::OK();
}

void PutHistogram(std::vector<uint8_t>& out, const telemetry::Histogram& h) {
  for (uint64_t b : h.buckets()) Put<uint64_t>(out, b);
  Put<uint64_t>(out, h.count());
  Put<int64_t>(out, h.max());
  Put<uint64_t>(out, h.sum());
}

void GetHistogram(Reader& r, telemetry::Histogram* h) {
  std::array<uint64_t, telemetry::Histogram::kNumBuckets> buckets{};
  for (uint64_t& b : buckets) b = r.Get<uint64_t>();
  uint64_t count = r.Get<uint64_t>();
  int64_t max = r.Get<int64_t>();
  uint64_t sum = r.Get<uint64_t>();
  if (!r.failed) h->Restore(buckets, count, max, sum);
}

}  // namespace

/// Serializes and restores the private state of ManagementService for
/// checkpoints.  Lives here (not in the service) so the service header
/// stays free of wire-format concerns; declared a friend there.
struct ServiceStateCodec {
  static void Serialize(const ManagementService& s,
                        std::vector<uint8_t>& out) {
    for (const auto& q : s.queues_) {
      Put<uint64_t>(out, q.size());
      for (const ManagementService::WorkItem& item : q) {
        Put<uint32_t>(out, item.db);
        Put<uint8_t>(out, static_cast<uint8_t>(item.cls));
        Put<int32_t>(out, item.attempts);
        Put<int64_t>(out, item.not_before);
        Put<int64_t>(out, item.enqueued_at);
        Put<int64_t>(out, item.deadline);
        Put<uint8_t>(out, item.hedged ? 1 : 0);
        Put<uint8_t>(out, item.wait_recorded ? 1 : 0);
      }
    }
    Put<uint64_t>(out, s.in_flight_.size());
    // Deterministic order, so identical states checkpoint identically.
    std::vector<DbId> ids;
    ids.reserve(s.in_flight_.size());
    for (const auto& [db, f] : s.in_flight_) ids.push_back(db);
    std::sort(ids.begin(), ids.end());
    for (DbId db : ids) {
      const ManagementService::InFlightItem& f = s.in_flight_.at(db);
      Put<uint32_t>(out, db);
      Put<uint8_t>(out, static_cast<uint8_t>(f.cls));
      Put<int32_t>(out, f.attempts);
      Put<int64_t>(out, f.started);
      Put<int64_t>(out, f.deadline);
      Put<uint8_t>(out, f.hedged ? 1 : 0);
    }
    const std::vector<double>& samples = s.resumed_per_iteration_.values();
    Put<uint64_t>(out, samples.size());
    for (double v : samples) Put<double>(out, v);

    const DiagnosticsReport& d = s.diagnostics_;
    Put<uint64_t>(out, d.observed_iterations);
    Put<uint64_t>(out, static_cast<uint64_t>(d.max_queue_depth));
    Put<uint64_t>(out, d.stuck_workflows);
    Put<uint64_t>(out, d.mitigated);
    Put<uint64_t>(out, d.skipped_state_changed);
    Put<uint64_t>(out, d.failed_then_skipped);
    Put<uint64_t>(out, d.failed_then_shed);
    Put<uint64_t>(out, d.incidents);
    Put<uint64_t>(out, d.backoff_retries_scheduled);
    Put<uint64_t>(out, d.backoff_delay_seconds_total);
    Put<uint64_t>(out, d.shed_resumes);
    Put<uint64_t>(out, d.breaker_opens);
    Put<uint64_t>(out, d.breaker_state_changes);
    Put<uint64_t>(out, d.storms_detected);
    Put<uint64_t>(out, d.slow_start_ticks);
    Put<uint64_t>(out, d.quota_deferrals);
    Put<uint64_t>(out, d.catch_up_enqueued);
    Put<uint64_t>(out, d.deleted_while_queued);
    Put<int32_t>(out, d.max_brownout_level);
    for (const ClassDiagnostics& c : d.per_class) {
      Put<uint64_t>(out, c.enqueued);
      Put<uint64_t>(out, c.resumed);
      Put<uint64_t>(out, c.shed_admission);
      Put<uint64_t>(out, c.shed_evicted);
      Put<uint64_t>(out, c.stuck);
      Put<uint64_t>(out, c.mitigated);
      Put<uint64_t>(out, c.incidents);
      Put<uint64_t>(out, c.skipped_state_changed);
      Put<uint64_t>(out, c.failed_then_skipped);
      Put<uint64_t>(out, c.failed_then_shed);
      Put<uint64_t>(out, c.deadline_breaches);
      Put<uint64_t>(out, c.hedged);
      Put<uint64_t>(out, c.hedge_wins);
    }
    PutHistogram(out, d.queue_wait);
    PutHistogram(out, d.in_flight_duration);
    Put<uint64_t>(out, s.total_resumed_);

    // Breaker/storm posture.  The sliding outcome window and half-open
    // probe progress are intentionally excluded: recovery re-arms them
    // conservatively (DESIGN.md section 10).
    Put<uint8_t>(out, static_cast<uint8_t>(s.breaker_));
    Put<int64_t>(out, s.breaker_opened_at_);
    Put<uint8_t>(out, s.storm_active_ ? 1 : 0);
    Put<uint64_t>(out, s.storm_seq_);
    Put<int32_t>(out, s.ramp_step_);
    Put<uint64_t>(out, s.quota_this_iteration_);
    Put<int64_t>(out, s.storm_ended_at_);
    Put<uint64_t>(out, s.reactive_arrivals_);

    // v2: unacked dispatches, persisted as their queued-item state.  On
    // restore they re-enter the queue pending reconciliation — their
    // request ids are meaningless to the next incarnation, whose recovery
    // resolves them against the node exactly like crash-left dispatches.
    Put<uint64_t>(out, s.unacked_.size());
    std::vector<DbId> udbs;
    udbs.reserve(s.unacked_.size());
    for (const auto& [db, u] : s.unacked_) udbs.push_back(db);
    std::sort(udbs.begin(), udbs.end());
    for (DbId db : udbs) {
      const ManagementService::WorkItem& item = s.unacked_.at(db).item;
      Put<uint32_t>(out, db);
      Put<uint8_t>(out, static_cast<uint8_t>(item.cls));
      Put<int32_t>(out, item.attempts);
      Put<int64_t>(out, item.not_before);
      Put<int64_t>(out, item.enqueued_at);
      Put<int64_t>(out, item.deadline);
      Put<uint8_t>(out, item.hedged ? 1 : 0);
      Put<uint8_t>(out, item.wait_recorded ? 1 : 0);
    }

    // v3: failover counters.
    Put<uint64_t>(out, d.node_failovers);
    Put<uint64_t>(out, d.failover_requeues);
  }

  static Status Deserialize(ManagementService* s, Reader& r) {
    for (auto& q : s->queues_) q.clear();
    s->queued_dbs_.clear();
    s->in_flight_.clear();
    s->unacked_.clear();
    for (auto& q : s->queues_) {
      uint64_t n = r.Get<uint64_t>();
      for (uint64_t i = 0; i < n && !r.failed; ++i) {
        ManagementService::WorkItem item;
        item.db = r.Get<uint32_t>();
        item.cls = static_cast<ResumeClass>(r.Get<uint8_t>());
        item.attempts = r.Get<int32_t>();
        item.not_before = r.Get<int64_t>();
        item.enqueued_at = r.Get<int64_t>();
        item.deadline = r.Get<int64_t>();
        item.hedged = r.Get<uint8_t>() != 0;
        item.wait_recorded = r.Get<uint8_t>() != 0;
        if (r.failed) break;
        q.push_back(item);
        s->queued_dbs_.emplace(item.db, item.cls);
      }
    }
    uint64_t n_in_flight = r.Get<uint64_t>();
    for (uint64_t i = 0; i < n_in_flight && !r.failed; ++i) {
      DbId db = r.Get<uint32_t>();
      ManagementService::InFlightItem f;
      f.cls = static_cast<ResumeClass>(r.Get<uint8_t>());
      f.attempts = r.Get<int32_t>();
      f.started = r.Get<int64_t>();
      f.deadline = r.Get<int64_t>();
      f.hedged = r.Get<uint8_t>() != 0;
      if (r.failed) break;
      s->in_flight_[db] = f;
    }
    s->resumed_per_iteration_ = Summary();
    uint64_t n_samples = r.Get<uint64_t>();
    for (uint64_t i = 0; i < n_samples && !r.failed; ++i) {
      s->resumed_per_iteration_.Add(r.Get<double>());
    }

    DiagnosticsReport& d = s->diagnostics_;
    d.observed_iterations = r.Get<uint64_t>();
    d.max_queue_depth = static_cast<size_t>(r.Get<uint64_t>());
    d.stuck_workflows = r.Get<uint64_t>();
    d.mitigated = r.Get<uint64_t>();
    d.skipped_state_changed = r.Get<uint64_t>();
    d.failed_then_skipped = r.Get<uint64_t>();
    d.failed_then_shed = r.Get<uint64_t>();
    d.incidents = r.Get<uint64_t>();
    d.backoff_retries_scheduled = r.Get<uint64_t>();
    d.backoff_delay_seconds_total = r.Get<uint64_t>();
    d.shed_resumes = r.Get<uint64_t>();
    d.breaker_opens = r.Get<uint64_t>();
    d.breaker_state_changes = r.Get<uint64_t>();
    d.storms_detected = r.Get<uint64_t>();
    d.slow_start_ticks = r.Get<uint64_t>();
    d.quota_deferrals = r.Get<uint64_t>();
    d.catch_up_enqueued = r.Get<uint64_t>();
    d.deleted_while_queued = r.Get<uint64_t>();
    d.max_brownout_level = r.Get<int32_t>();
    for (ClassDiagnostics& c : d.per_class) {
      c.enqueued = r.Get<uint64_t>();
      c.resumed = r.Get<uint64_t>();
      c.shed_admission = r.Get<uint64_t>();
      c.shed_evicted = r.Get<uint64_t>();
      c.stuck = r.Get<uint64_t>();
      c.mitigated = r.Get<uint64_t>();
      c.incidents = r.Get<uint64_t>();
      c.skipped_state_changed = r.Get<uint64_t>();
      c.failed_then_skipped = r.Get<uint64_t>();
      c.failed_then_shed = r.Get<uint64_t>();
      c.deadline_breaches = r.Get<uint64_t>();
      c.hedged = r.Get<uint64_t>();
      c.hedge_wins = r.Get<uint64_t>();
    }
    GetHistogram(r, &d.queue_wait);
    GetHistogram(r, &d.in_flight_duration);
    s->total_resumed_ = r.Get<uint64_t>();

    s->breaker_ = static_cast<BreakerState>(r.Get<uint8_t>());
    s->breaker_opened_at_ = r.Get<int64_t>();
    s->storm_active_ = r.Get<uint8_t>() != 0;
    s->storm_seq_ = r.Get<uint64_t>();
    s->ramp_step_ = r.Get<int32_t>();
    s->quota_this_iteration_ = r.Get<uint64_t>();
    s->storm_ended_at_ = r.Get<int64_t>();
    s->reactive_arrivals_ = r.Get<uint64_t>();
    uint64_t n_unacked = r.Get<uint64_t>();
    for (uint64_t i = 0; i < n_unacked && !r.failed; ++i) {
      ManagementService::WorkItem item;
      item.db = r.Get<uint32_t>();
      item.cls = static_cast<ResumeClass>(r.Get<uint8_t>());
      item.attempts = r.Get<int32_t>();
      item.not_before = r.Get<int64_t>();
      item.enqueued_at = r.Get<int64_t>();
      item.deadline = r.Get<int64_t>();
      item.hedged = r.Get<uint8_t>() != 0;
      item.wait_recorded = r.Get<uint8_t>() != 0;
      if (r.failed) break;
      // Back into the queue, flagged for reconciliation: the restored
      // incarnation treats a checkpointed unacked dispatch exactly like a
      // crash-left one.
      s->queues_[ManagementService::Idx(item.cls)].push_back(item);
      s->queued_dbs_.emplace(item.db, item.cls);
      s->recovery_pending_[item.db] = item.cls;
    }
    d.node_failovers = r.Get<uint64_t>();
    d.failover_requeues = r.Get<uint64_t>();
    s->outcomes_.clear();
    s->window_failures_ = 0;
    s->half_open_probes_issued_ = 0;
    s->half_open_successes_ = 0;
    if (r.failed) {
      return Status::Corruption("control-plane checkpoint truncated");
    }
    return Status::OK();
  }
};

Status SaveCheckpoint(const std::string& path, const MetadataStore& meta,
                      const ManagementService& svc, uint64_t epoch,
                      uint64_t last_seq) {
  std::vector<uint8_t> body;
  Put<uint64_t>(body, epoch);
  Put<uint64_t>(body, last_seq);
  std::vector<MetadataStore::ExportedEntry> rows = meta.Export();
  Put<uint64_t>(body, rows.size());
  for (const MetadataStore::ExportedEntry& row : rows) {
    Put<uint32_t>(body, row.db);
    Put<int32_t>(body, row.state_code);
    Put<int64_t>(body, row.predicted_start);
  }
  ServiceStateCodec::Serialize(svc, body);
  uint32_t crc = storage::Crc32(body.data(), body.size());

  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create checkpoint temp");
  bool ok = std::fwrite(&kCheckpointMagic, 4, 1, f) == 1 &&
            std::fwrite(&kCheckpointVersion, 4, 1, f) == 1;
  size_t half = body.size() / 2;
  ok = ok && (half == 0 || std::fwrite(body.data(), half, 1, f) == 1);
  // Crash simulation: the process dies halfway through the temp file.
  // The previous checkpoint (or none) plus the un-truncated journal must
  // still recover the full state.  Both the storage-generic and the
  // control-plane-specific point fire here, so either arm reaches it.
  for (std::string_view point :
       {faults::kSnapshotMidCopy, faults::kCpCheckpointMidWrite}) {
    if (Status crash = faults::HitCrashPoint(point); !crash.ok()) {
      std::fclose(f);
      return crash;
    }
  }
  ok = ok &&
       (body.size() == half ||
        std::fwrite(body.data() + half, body.size() - half, 1, f) == 1) &&
       std::fwrite(&crc, 4, 1, f) == 1;
  ok = ok && SyncStream(f).ok();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("checkpoint rename failed");
  }
  PRORP_RETURN_IF_ERROR(storage::io::SyncParentDir(path));
  return Status::OK();
}

Result<LoadedCheckpoint> LoadCheckpoint(const std::string& path,
                                        MetadataStore* meta,
                                        ManagementService* svc) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("no control-plane checkpoint");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 12) {
    std::fclose(f);
    return Status::Corruption("control-plane checkpoint too small");
  }
  std::vector<uint8_t> buf(static_cast<size_t>(size));
  bool ok = std::fread(buf.data(), buf.size(), 1, f) == 1;
  std::fclose(f);
  if (!ok) return Status::IoError("checkpoint read failed");

  uint32_t magic, version, crc;
  std::memcpy(&magic, buf.data(), 4);
  std::memcpy(&version, buf.data() + 4, 4);
  std::memcpy(&crc, buf.data() + buf.size() - 4, 4);
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (version != kCheckpointVersion) {
    return Status::Corruption("unknown checkpoint version");
  }
  const uint8_t* body = buf.data() + 8;
  size_t body_len = buf.size() - 12;
  if (storage::Crc32(body, body_len) != crc) {
    return Status::Corruption("checkpoint CRC mismatch");
  }

  Reader r{body, body + body_len};
  LoadedCheckpoint loaded;
  loaded.epoch = r.Get<uint64_t>();
  loaded.last_seq = r.Get<uint64_t>();
  uint64_t n_rows = r.Get<uint64_t>();
  for (uint64_t i = 0; i < n_rows && !r.failed; ++i) {
    DbId db = r.Get<uint32_t>();
    int32_t state_code = r.Get<int32_t>();
    EpochSeconds predicted_start = r.Get<int64_t>();
    if (r.failed) break;
    PRORP_RETURN_IF_ERROR(meta->RestoreUpsert(db, state_code,
                                              predicted_start));
  }
  PRORP_RETURN_IF_ERROR(ServiceStateCodec::Deserialize(svc, r));
  return loaded;
}

}  // namespace prorp::controlplane
