#include "controlplane/metadata_store.h"

#include <algorithm>

#include "controlplane/journal.h"
#include "sql/parser.h"

namespace prorp::controlplane {
namespace {

int64_t StateCode(policy::DbState state) {
  switch (state) {
    case policy::DbState::kResumed:
      return 0;
    case policy::DbState::kLogicallyPaused:
      return 1;
    case policy::DbState::kPhysicallyPaused:
      return 2;
  }
  return -1;
}

Result<policy::DbState> StateFromCode(int32_t code) {
  switch (code) {
    case 0:
      return policy::DbState::kResumed;
    case 1:
      return policy::DbState::kLogicallyPaused;
    case 2:
      return policy::DbState::kPhysicallyPaused;
    default:
      return Status::Corruption("unknown db state code in journal");
  }
}

}  // namespace

Result<std::unique_ptr<MetadataStore>> MetadataStore::Open(Backing backing) {
  std::unique_ptr<MetadataStore> store(new MetadataStore());
  if (backing == Backing::kIndexOnly) return store;
  store->db_ = std::make_unique<sql::Database>();
  PRORP_RETURN_IF_ERROR(
      store->db_
          ->Execute("CREATE TABLE sys.databases ("
                    "database_id BIGINT PRIMARY KEY, state INT, "
                    "start_of_pred_activity BIGINT)")
          .status());
  PRORP_ASSIGN_OR_RETURN(
      store->insert_stmt_,
      sql::Parse("INSERT INTO sys.databases (database_id, state, "
                 "start_of_pred_activity) VALUES (@db, @state, @pred)"));
  PRORP_ASSIGN_OR_RETURN(
      store->update_stmt_,
      sql::Parse("UPDATE sys.databases SET state = @state, "
                 "start_of_pred_activity = @pred WHERE database_id = @db"));
  // Algorithm 5 lines 2-6 ('physical_pause' encoded as state = 2).
  PRORP_ASSIGN_OR_RETURN(
      store->select_due_stmt_,
      sql::Parse("SELECT database_id FROM sys.databases "
                 "WHERE state = 2 AND @lo <= start_of_pred_activity AND "
                 "start_of_pred_activity < @hi"));
  PRORP_ASSIGN_OR_RETURN(
      store->delete_stmt_,
      sql::Parse("DELETE FROM sys.databases WHERE database_id = @db"));
  return store;
}

Status MetadataStore::UpsertState(DbId db, policy::DbState state,
                                  EpochSeconds predicted_start) {
  if (journal_ != nullptr) {
    // Journal-before-apply: the mutation must be recoverable before any
    // caller can observe it.  A refused append means the control plane is
    // dead — nothing is applied, nothing acknowledged.
    JournalRecord rec;
    rec.event = JournalEvent::kMetaUpsert;
    rec.epoch = epoch_;
    rec.db = db;
    rec.cls = static_cast<uint8_t>(StateCode(state));
    rec.predicted_start = predicted_start;
    PRORP_RETURN_IF_ERROR(journal_->Append(rec));
  }
  return ApplyUpsert(db, state, predicted_start);
}

Status MetadataStore::RestoreUpsert(DbId db, int32_t state_code,
                                    EpochSeconds predicted_start) {
  PRORP_ASSIGN_OR_RETURN(policy::DbState state, StateFromCode(state_code));
  return ApplyUpsert(db, state, predicted_start);
}

Status MetadataStore::ApplyUpsert(DbId db, policy::DbState state,
                                  EpochSeconds predicted_start) {
  if (state != policy::DbState::kPhysicallyPaused) predicted_start = 0;
  if (db >= entries_.size()) {
    // Geometric growth: resize(db + 1) alone would make sequential
    // first-inserts quadratic.
    entries_.resize(std::max<size_t>(db + 1, entries_.size() * 2));
  }
  Entry& entry = entries_[db];
  if (!entry.present) {
    if (db_ != nullptr) {
      sql::Params params{{"db", static_cast<int64_t>(db)},
                         {"state", StateCode(state)},
                         {"pred", predicted_start}};
      PRORP_RETURN_IF_ERROR(
          db_->ExecuteStatement(insert_stmt_, params).status());
    }
    ++live_;
  } else {
    // Drop the stale index entry before overwriting.
    if (entry.state == policy::DbState::kPhysicallyPaused &&
        entry.predicted_start > 0) {
      resume_index_.erase({entry.predicted_start, db});
    }
    if (db_ != nullptr) {
      sql::Params params{{"db", static_cast<int64_t>(db)},
                         {"state", StateCode(state)},
                         {"pred", predicted_start}};
      PRORP_RETURN_IF_ERROR(
          db_->ExecuteStatement(update_stmt_, params).status());
    }
  }
  entry = {state, predicted_start, true};
  if (state == policy::DbState::kPhysicallyPaused && predicted_start > 0) {
    resume_index_[{predicted_start, db}] = true;
  }
  return Status::OK();
}

Result<std::vector<DbId>> MetadataStore::SelectDueForResume(
    EpochSeconds now, DurationSeconds k, DurationSeconds period) const {
  std::vector<DbId> due;
  EpochSeconds lo = now + k;
  EpochSeconds hi = now + k + period;
  for (auto it = resume_index_.lower_bound({lo, 0});
       it != resume_index_.end() && it->first.first < hi; ++it) {
    due.push_back(it->first.second);
  }
  return due;
}

Result<std::vector<DbId>> MetadataStore::SelectDueForResumeSql(
    EpochSeconds now, DurationSeconds k, DurationSeconds period) const {
  if (db_ == nullptr) {
    return Status::FailedPrecondition(
        "SelectDueForResumeSql requires Backing::kSqlMirrored");
  }
  sql::Params params{{"lo", now + k}, {"hi", now + k + period}};
  PRORP_ASSIGN_OR_RETURN(sql::QueryResult r,
                         db_->ExecuteStatement(select_due_stmt_, params));
  std::vector<DbId> due;
  due.reserve(r.rows.size());
  for (const sql::Row& row : r.rows) {
    due.push_back(static_cast<DbId>(row[0]));
  }
  return due;
}

Result<std::vector<MissedResume>> MetadataStore::SelectMissedResume(
    EpochSeconds now, DurationSeconds lookback, DurationSeconds k) const {
  std::vector<MissedResume> missed;
  EpochSeconds lo = now - lookback;
  EpochSeconds hi = now + k;
  for (auto it = resume_index_.lower_bound({lo, 0});
       it != resume_index_.end() && it->first.first < hi; ++it) {
    missed.push_back({it->first.second, it->first.first});
  }
  return missed;
}

Status MetadataStore::Remove(DbId db) {
  if (journal_ != nullptr && Contains(db)) {
    JournalRecord rec;
    rec.event = JournalEvent::kMetaRemove;
    rec.epoch = epoch_;
    rec.db = db;
    PRORP_RETURN_IF_ERROR(journal_->Append(rec));
  }
  return ApplyRemove(db);
}

Status MetadataStore::ApplyRemove(DbId db) {
  if (!Contains(db)) return Status::OK();
  Entry& entry = entries_[db];
  if (entry.state == policy::DbState::kPhysicallyPaused &&
      entry.predicted_start > 0) {
    resume_index_.erase({entry.predicted_start, db});
  }
  if (db_ != nullptr) {
    sql::Params params{{"db", static_cast<int64_t>(db)}};
    PRORP_RETURN_IF_ERROR(
        db_->ExecuteStatement(delete_stmt_, params).status());
  }
  entry = Entry{};
  --live_;
  return Status::OK();
}

std::vector<MetadataStore::ExportedEntry> MetadataStore::Export() const {
  std::vector<ExportedEntry> out;
  out.reserve(live_);
  // Index order is id order, so the result is born sorted.
  for (DbId db = 0; db < entries_.size(); ++db) {
    const Entry& entry = entries_[db];
    if (!entry.present) continue;
    out.push_back({db, static_cast<int32_t>(StateCode(entry.state)),
                   entry.predicted_start});
  }
  return out;
}

uint64_t MetadataStore::CountInState(policy::DbState state) const {
  uint64_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.present && entry.state == state) ++n;
  }
  return n;
}

}  // namespace prorp::controlplane
