#ifndef PRORP_CONTROLPLANE_NODE_HEALTH_H_
#define PRORP_CONTROLPLANE_NODE_HEALTH_H_

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/config.h"

namespace prorp::controlplane {

/// Health verdict the tracker holds for one node.
enum class NodeHealth : uint8_t {
  kHealthy = 0,  ///< grants flowing, latency acceptable: lease is extended
  kSuspect,      ///< missed grants or gray failure: probes only, lease drains
  kDead,         ///< declared past the fence-safe bound: failover may run
};

/// Lease-driven failure detector for the node pool (DESIGN.md section 12).
///
/// The dispatcher feeds it three event streams: renewals sent (with their
/// ttl), grants received (per node, with round-trip latency), and ack
/// latencies of workflow replies.  From those it runs a per-node
/// healthy -> suspect -> dead state machine:
///
///  * healthy -> suspect when no grant has arrived for `suspect_after`
///    seconds, or — gray failure — when the node's p99 reply latency
///    exceeds `slow_p99_threshold` even though grants still flow;
///  * suspect -> healthy when a grant arrives and the latency score is
///    back under the bar;
///  * suspect -> dead only after BOTH the node's fence-safe time has
///    passed AND the suspicion has dwelled for `dead_grace` seconds.
///
/// The fence-safe time is the pivot of the split-brain argument: it is
/// max over every real (nonzero-ttl) renewal of sent_at + ttl — the
/// latest instant at which the node could still believe it holds a
/// lease.  While a node is suspect the plane sends only ttl=0 probes, so
/// fence-safe stops advancing; a zombie that keeps receiving probes (but
/// whose replies are lost) still self-fences by that bound.  Because
/// death is declared strictly after fence-safe, a death declaration IS
/// the re-placement license: no surviving side effect of the dead node
/// can race the databases the failover engine moves.
///
/// Everything is virtual-clock driven and allocation-stable: per-node
/// latency scoring uses a fixed 64-sample ring and an exact
/// nth_element p99, so a run is bit-reproducible.
class NodeHealthTracker {
 public:
  struct Options {
    /// TTL the plane puts on real renewals (mirrors the dispatcher's
    /// lease_ttl; used only for documentation/validation here — the
    /// authoritative per-renewal value arrives via OnRenewalSent).
    DurationSeconds lease_ttl = 240;
    /// Grant-silence gap that demotes healthy -> suspect.
    DurationSeconds suspect_after = 150;
    /// Extra dwell past the fence-safe time before declaring death.
    DurationSeconds dead_grace = 60;
    /// Cooldown before a dead node that grants again is re-admitted.
    DurationSeconds rejoin_after = 300;
    /// Gray-failure bar: p99 reply latency above this demotes a node
    /// even while its grants keep flowing.  Zero disables the score.
    DurationSeconds slow_p99_threshold = 0;
    /// Minimum ring occupancy before the p99 score is trusted.
    int min_latency_samples = 16;
  };

  struct Stats {
    uint64_t suspects_missed_grants = 0;
    uint64_t suspects_gray_failure = 0;
    uint64_t recoveries = 0;  ///< suspect -> healthy
    uint64_t deaths = 0;
    uint64_t rejoins = 0;  ///< dead -> healthy after cooldown
  };

  NodeHealthTracker() : NodeHealthTracker(Options()) {}
  explicit NodeHealthTracker(Options options) : options_(options) {}

  /// Starts tracking `node` as healthy with its grant clock at `now`
  /// (so a fresh node is not instantly suspect).  Idempotent.
  void Register(uint32_t node, EpochSeconds now);

  /// A renewal left the plane for `node`.  Real renewals (ttl > 0)
  /// advance the node's fence-safe time; probes do not.
  void OnRenewalSent(uint32_t node, EpochSeconds sent_at,
                     DurationSeconds ttl);

  /// A grant arrived from `node` with the given round-trip latency.
  void OnLeaseGrant(uint32_t node, DurationSeconds latency,
                    EpochSeconds now);

  /// A workflow reply (ack or nack) arrived from `node`.
  void OnAckLatency(uint32_t node, DurationSeconds latency,
                    EpochSeconds now);

  /// Runs the time-based transitions (suspicion, death declarations).
  void AdvanceTime(EpochSeconds now);

  NodeHealth health(uint32_t node) const;

  /// True when the plane should send `node` a real renewal; suspect and
  /// dead nodes get ttl=0 probes so their fence-safe bound stays put.
  bool ShouldExtendLease(uint32_t node) const {
    return health(node) == NodeHealth::kHealthy;
  }

  /// Latest instant the node could still believe it holds a lease.
  EpochSeconds fence_safe_at(uint32_t node) const;

  /// Dead AND past its fence-safe bound: dispatches for its databases
  /// may be diverted to survivors without double-live risk.
  bool DeadAndFenced(uint32_t node, EpochSeconds now) const;

  /// Drains the nodes declared dead since the last call (ascending node
  /// id) — the failover engine's work feed.
  std::vector<uint32_t> TakeNewlyDead();

  /// Per-node grant counter (the dispatcher's aggregate, disaggregated).
  uint64_t lease_grants(uint32_t node) const;

  /// Current p99 latency score of the node's reply ring (0 when the
  /// ring is under-filled).
  DurationSeconds LatencyP99(uint32_t node) const;

  std::vector<uint32_t> Nodes() const;
  const Stats& stats() const { return stats_; }

 private:
  static constexpr int kRingSize = 64;

  struct NodeState {
    NodeHealth health = NodeHealth::kHealthy;
    bool gray = false;  ///< current suspicion came from the latency score
    EpochSeconds last_grant_at = 0;
    EpochSeconds fence_safe_at = 0;
    EpochSeconds suspected_at = 0;
    EpochSeconds died_at = 0;
    uint64_t grants = 0;
    std::array<DurationSeconds, kRingSize> ring{};
    int ring_n = 0;
    int ring_pos = 0;
  };

  NodeState& Ensure(uint32_t node, EpochSeconds now);
  void PushLatency(NodeState& st, DurationSeconds latency);
  bool Slow(const NodeState& st) const;
  static DurationSeconds RingP99(const NodeState& st);

  Options options_;
  /// Ordered map: AdvanceTime iterates in ascending node id, so death
  /// declarations (and thus failover order) are deterministic.
  std::map<uint32_t, NodeState> nodes_;
  std::vector<uint32_t> newly_dead_;
  Stats stats_;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_NODE_HEALTH_H_
