#ifndef PRORP_CONTROLPLANE_JOURNAL_H_
#define PRORP_CONTROLPLANE_JOURNAL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/time_util.h"
#include "storage/wal.h"
#include "telemetry/events.h"

namespace prorp::controlplane {

using telemetry::DbId;

/// Event types of the control-plane journal.  Every externally visible
/// state transition of the ManagementService and MetadataStore is
/// journaled as one of these BEFORE it takes effect in memory, so a
/// control-plane death can always be recovered by checkpoint + replay
/// (DESIGN.md section 10).
enum class JournalEvent : uint8_t {
  /// A new control-plane incarnation opened the journal.  Workflow
  /// identity for cross-incarnation dedup is (db, epoch).
  kEpochStart = 1,
  kMetaUpsert = 2,       // metadata mutation: db, state code, predicted start
  kMetaRemove = 3,       // database dropped from the metadata store
  kAccepted = 4,         // workflow admitted into the queue
  kAdmissionShed = 5,    // workflow refused at admission (breaker/brownout)
  kEvicted = 6,          // queued workflow evicted by a higher class
  kRetired = 7,          // queued workflow retired without an attempt
  kDispatched = 8,       // resume callback about to run (pre-ack)
  kOutcomeOk = 9,        // dispatch succeeded
  kOutcomeFailed = 10,   // dispatch failed (backoff retry or incident)
  kHedge = 11,           // watchdog hedged an in-flight workflow
  kCompleted = 12,       // asynchronous workflow completion arrived
  kBreaker = 13,         // circuit-breaker state transition
  kStormStart = 14,      // storm detector tripped
  kStormEnd = 15,        // storm backlog drained
  kIteration = 16,       // one RunOnce iteration finished (aggregates)
  kReconcileComplete = 17,  // recovery: unacked dispatch found resumed
  kReconcileRequeue = 18,   // recovery: unacked dispatch found not resumed
  kNodeDead = 19,           // failure detector declared a node dead
};

std::string_view JournalEventName(JournalEvent event);

// Flag bits of JournalRecord::flags (meaning depends on the event).
inline constexpr uint32_t kJfHedge = 1u << 0;       // attempt was a hedge
inline constexpr uint32_t kJfWasFailed = 1u << 1;   // item had attempts > 0
inline constexpr uint32_t kJfDeleted = 1u << 2;     // db vanished (kRetired)
inline constexpr uint32_t kJfAsync = 1u << 3;       // went in flight (kOutcomeOk)
inline constexpr uint32_t kJfBreakerShed = 1u << 4;  // shed by open breaker
inline constexpr uint32_t kJfIncident = 1u << 5;    // retries exhausted
inline constexpr uint32_t kJfCatchUp = 1u << 6;     // admitted by catch-up sweep
inline constexpr uint32_t kJfFirstWait = 1u << 7;   // queue wait sampled here
inline constexpr uint32_t kJfHedgeWin = 1u << 8;    // hedge attempt succeeded
inline constexpr uint32_t kJfSlowStart = 1u << 9;   // iteration ran quota'd
inline constexpr uint32_t kJfFirstFailure = 1u << 10;  // became stuck here
inline constexpr uint32_t kJfReactive = 1u << 11;   // reactive-login arrival
inline constexpr uint32_t kJfFailover = 1u << 12;   // failover re-placement

/// One journaled control-plane transition.  The record is fixed-layout:
/// fields not meaningful for an event type are zero.  `cls` carries a
/// ResumeClass for workflow events, a BreakerState code for kBreaker, and
/// a DbState code for kMetaUpsert.  `attempt` carries the attempt number
/// for workflow events and the brownout level for admission events.
struct JournalRecord {
  JournalEvent event = JournalEvent::kEpochStart;
  uint64_t epoch = 0;
  DbId db = 0;
  uint8_t cls = 0;
  uint32_t flags = 0;
  int32_t attempt = 0;
  EpochSeconds time = 0;
  EpochSeconds enqueued_at = 0;
  EpochSeconds not_before = 0;
  EpochSeconds deadline = 0;
  int64_t predicted_start = 0;
  /// kIteration aggregates, journaled as absolutes so replay is
  /// idempotent: [0] resumed this iteration, [1] max_queue_depth,
  /// [2] quota_deferrals, [3] quota_this_iteration.
  std::array<uint64_t, 4> stats{};
};

/// The control-plane write-ahead journal: JournalRecords framed through
/// the existing WriteAheadLog (CRC32 per record, torn-tail-safe replay,
/// group commit available to future concurrent callers).  Each record
/// carries a monotonic sequence number in the WalRecord key; checkpoints
/// remember the last folded-in sequence so replay after a crash between
/// checkpoint publication and journal truncation skips already-applied
/// records exactly once.
///
/// Failure model: fail-stop.  The first append that does not reach the
/// medium (I/O error, ENOSPC, injected crash) latches the journal dead;
/// every later append refuses with the same status, so no transition can
/// be acknowledged after the journal stopped recording them.  The owner
/// is expected to treat a dead journal as a control-plane death and
/// recover from disk.
class ControlPlaneJournal {
 public:
  enum class SyncMode {
    /// fsync per record: a transition is acknowledged only when durable
    /// (the default for torture and production-shaped use).
    kDurable,
    /// Buffered appends; durability rides on checkpoints and explicit
    /// Sync().  Survives process death (the page cache persists), not
    /// power loss.  The fleet simulator uses this mode.
    kBuffered,
  };

  static Result<std::unique_ptr<ControlPlaneJournal>> Open(
      const std::string& path, SyncMode mode);

  ControlPlaneJournal(const ControlPlaneJournal&) = delete;
  ControlPlaneJournal& operator=(const ControlPlaneJournal&) = delete;

  /// Appends one record (assigning the next sequence number) and, in
  /// kDurable mode, makes it stable before returning.  On any failure the
  /// journal latches dead and every subsequent call returns the latched
  /// status.
  Status Append(const JournalRecord& record);

  /// Forces buffered records to stable storage.
  Status Sync();

  /// Truncates the journal after a checkpoint captured its effects.  The
  /// sequence counter keeps running: record identity never repeats.
  Status TruncateAfterCheckpoint();

  /// False once an append failed or an injected crash fired: the control
  /// plane must stop acknowledging work and be recovered from disk.
  bool healthy() const { return dead_.ok(); }
  const Status& dead_status() const { return dead_; }

  /// Sequence number the next append will use.
  uint64_t next_seq() const { return next_seq_; }
  void set_next_seq(uint64_t seq) { next_seq_ = seq; }

  uint64_t appended_records() const { return appended_; }
  Result<uint64_t> SizeBytes() const { return wal_->SizeBytes(); }
  const std::string& path() const { return path_; }

  /// Attaches a fault plan consulted on every append/sync (kWalAppend /
  /// kWalSync ops).  nullptr detaches.
  void set_fault_plan(faults::FaultPlan* plan) { wal_->set_fault_plan(plan); }

  /// Replays all intact records in order, invoking `apply(seq, record)`.
  /// A trailing torn record (crash mid-append) is trimmed, not an error.
  /// Returns the number of records replayed.
  static Result<uint64_t> Replay(
      const std::string& path,
      const std::function<Status(uint64_t seq, const JournalRecord&)>& apply);

 private:
  ControlPlaneJournal(std::unique_ptr<storage::WriteAheadLog> wal,
                      std::string path, SyncMode mode)
      : wal_(std::move(wal)), path_(std::move(path)), mode_(mode) {}

  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::string path_;
  SyncMode mode_;
  uint64_t next_seq_ = 1;
  uint64_t appended_ = 0;
  Status dead_ = Status::OK();
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_JOURNAL_H_
