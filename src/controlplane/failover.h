#ifndef PRORP_CONTROLPLANE_FAILOVER_H_
#define PRORP_CONTROLPLANE_FAILOVER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "controlplane/management_service.h"
#include "controlplane/node_health.h"

namespace prorp::controlplane {

/// Fenced failover of the databases resumed on a dead node (DESIGN.md
/// section 12).
///
/// The engine drains the health tracker's death declarations.  For each
/// dead node it journals the decision (kNodeDead) and re-places every
/// database the placement source reports as resumed there, as
/// reactive-priority work through ManagementService::EnqueueFailover —
/// the normal admission/dispatch machinery does the rest.
///
/// Exactly-once across a plane crash mid-failover:
///  * the declaration and every re-queue are journaled BEFORE they take
///    effect, so replay restores exactly the re-queues that were
///    acknowledged and nothing twice (EnqueueFailover dedups against
///    queued/in-flight/unacked state, which replay also restores);
///  * a crash BEFORE the declaration loses nothing: the new incarnation's
///    fresh tracker re-detects the dead node (its grants are still
///    absent) and re-runs the enumeration against the re-learned
///    placements, while databases whose workflows died with the plane are
///    already re-placed by the standard recovery reconcile.
///
/// Safety: a death declaration only exists past the node's fence-safe
/// time (NodeHealthTracker declares death strictly after it), and by then
/// the node has self-quiesced — so a re-placed database can never be live
/// on two nodes at once.
class FailoverEngine {
 public:
  /// Placement source: databases currently believed resumed on `node`.
  /// Must be safe to call at declaration time; order need not be sorted
  /// (the engine sorts for determinism).
  using EnumerateFn = std::function<std::vector<DbId>(uint32_t node)>;
  /// Test/telemetry hook, invoked once per database actually re-queued.
  using RequeueHook =
      std::function<void(DbId db, uint32_t node, EpochSeconds now)>;

  struct DeathRecord {
    uint32_t node = 0;
    EpochSeconds declared_at = 0;
    uint64_t requeued = 0;  ///< databases re-placed by this declaration
    uint64_t deduped = 0;   ///< already queued/in-flight/unacked
  };

  struct Stats {
    uint64_t nodes_failed_over = 0;
    uint64_t requeued = 0;
    uint64_t deduped = 0;
  };

  FailoverEngine(ManagementService* service, NodeHealthTracker* tracker,
                 EnumerateFn enumerate)
      : service_(service),
        tracker_(tracker),
        enumerate_(std::move(enumerate)) {}

  /// Recovery re-points the engine at the new service incarnation.
  void set_service(ManagementService* service) { service_ = service; }
  void set_requeue_hook(RequeueHook hook) { hook_ = std::move(hook); }

  /// Drains death declarations accumulated since the last call.  Returns
  /// the first journaling failure (the plane is fencing itself; the
  /// undrained declarations stay with the tracker's state and are
  /// re-detected after recovery).
  Status Tick(EpochSeconds now);

  const std::vector<DeathRecord>& deaths() const { return deaths_; }
  const Stats& stats() const { return stats_; }

 private:
  ManagementService* service_;
  NodeHealthTracker* tracker_;
  EnumerateFn enumerate_;
  RequeueHook hook_;
  std::vector<DeathRecord> deaths_;
  Stats stats_;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_FAILOVER_H_
