#ifndef PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
#define PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_

#include <deque>
#include <functional>

#include "common/config.h"
#include "common/stats.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {

/// Outcome counters of the diagnostics and mitigation runner (Section 7):
/// it monitors the proactive-resume queue, retries stuck workflows, and
/// raises an incident when mitigation fails.
struct DiagnosticsReport {
  uint64_t observed_iterations = 0;
  size_t max_queue_depth = 0;
  uint64_t stuck_workflows = 0;      // required at least one retry
  uint64_t mitigated = 0;            // succeeded on retry
  uint64_t skipped_state_changed = 0;  // database resumed on its own
  uint64_t incidents = 0;            // retries exhausted -> on-call
};

/// The periodic proactive resume operation of the Management Service
/// (Algorithm 5), plus the workflow queue with stuck-workflow mitigation.
///
/// Each RunOnce(now):
///  1. selects physically paused databases whose predicted activity starts
///     within [now + k, now + k + period) from the metadata store,
///  2. enqueues a resume workflow per database, and
///  3. drains the queue by invoking the resume callback, retrying
///     transient failures up to `max_attempts` before raising an incident.
///
/// The resume callback returns:
///   OK                  — resources allocated (LogicalPause entered),
///   FailedPrecondition  — the database is no longer physically paused
///                         (customer beat us to it); dropped silently,
///   anything else       — transient workflow failure; retried.
class ManagementService {
 public:
  using ResumeCallback =
      std::function<Status(DbId db, EpochSeconds now)>;

  ManagementService(MetadataStore* metadata, ControlPlaneConfig config,
                    ResumeCallback resume, int max_attempts = 3);

  /// One iteration of the proactive resume operation.  Returns the number
  /// of databases proactively resumed in this iteration (the Figure 11
  /// metric).  Set `use_sql_scan` to exercise the faithful SQL path.
  Result<uint64_t> RunOnce(EpochSeconds now, bool use_sql_scan = false);

  /// Number of databases resumed per iteration so far (box-plot source).
  const Summary& resumed_per_iteration() const {
    return resumed_per_iteration_;
  }
  const DiagnosticsReport& diagnostics() const { return diagnostics_; }
  uint64_t total_resumed() const { return total_resumed_; }
  const ControlPlaneConfig& config() const { return config_; }

 private:
  struct WorkItem {
    DbId db;
    int attempts = 0;
  };

  MetadataStore* metadata_;
  ControlPlaneConfig config_;
  ResumeCallback resume_;
  int max_attempts_;
  std::deque<WorkItem> queue_;
  Summary resumed_per_iteration_;
  DiagnosticsReport diagnostics_;
  uint64_t total_resumed_ = 0;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
