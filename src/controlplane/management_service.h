#ifndef PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
#define PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_

#include <array>
#include <deque>
#include <functional>
#include <string_view>
#include <unordered_map>

#include "common/config.h"
#include "common/stats.h"
#include "controlplane/metadata_store.h"
#include "telemetry/histogram.h"

namespace prorp::controlplane {

class ControlPlaneJournal;
struct JournalRecord;
struct ServiceStateCodec;

/// Circuit-breaker state of the resume-workflow path.
enum class BreakerState {
  kClosed,    // normal operation
  kOpen,      // shedding: fresh resumes dropped, retries held
  kHalfOpen,  // probing: a few attempts allowed to test recovery
};

std::string_view BreakerStateName(BreakerState state);

/// Workflow class of one resume request, in strict priority order: a
/// lower value is drained first and shed last.
enum class ResumeClass : uint8_t {
  /// A customer login hit a physically paused database; the customer is
  /// waiting.  Never bounded, never shed, breaker- and quota-exempt.
  kReactiveLogin = 0,
  /// Proactive pre-warm whose predicted activity start is still ahead.
  kImminentProactive = 1,
  /// Proactive pre-warm whose predicted start has already passed (a
  /// catch-up after the resume path was degraded) — useful, not urgent.
  kSpeculativeProactive = 2,
  /// Background maintenance touch of a physically paused database.
  kMaintenance = 3,
};

inline constexpr size_t kNumResumeClasses = 4;

std::string_view ResumeClassName(ResumeClass cls);

/// One resume-workflow attempt handed to the resume callback.
struct ResumeAttempt {
  DbId db = 0;
  ResumeClass cls = ResumeClass::kImminentProactive;
  int attempt = 1;    // 1-based; a hedge repeats the upcoming attempt no.
  bool hedge = false;  // deadline-breach rescue, route to a different node
  int node_offset = 0;  // 0 = the database's home node; hedges pass 1
  EpochSeconds enqueued_at = 0;
  /// Dispatch identity for the transport layer: (epoch << 32) | seq.
  /// Node-side dedup and ack matching key; 0 only before dispatch.
  uint64_t request_id = 0;
};

/// Per-class slice of the mitigation accounting.  The invariant holds
/// class by class:
///   stuck == mitigated + incidents + failed_then_skipped
///            + failed_then_shed + (queued items of the class with
///                                  attempts > 0).
struct ClassDiagnostics {
  uint64_t enqueued = 0;
  uint64_t resumed = 0;
  uint64_t shed_admission = 0;  // refused at enqueue (breaker/brownout/full)
  uint64_t shed_evicted = 0;    // evicted from the queue by a higher class
  uint64_t stuck = 0;
  uint64_t mitigated = 0;
  uint64_t incidents = 0;
  uint64_t skipped_state_changed = 0;
  uint64_t failed_then_skipped = 0;
  uint64_t failed_then_shed = 0;   // failed first, then shed/evicted
  uint64_t deadline_breaches = 0;  // workflows that blew their deadline
  uint64_t hedged = 0;             // hedge attempts dispatched
  uint64_t hedge_wins = 0;         // hedge attempt itself succeeded

  uint64_t shed() const { return shed_admission + shed_evicted; }
};

/// Outcome counters of the diagnostics and mitigation runner (Section 7):
/// it monitors the proactive-resume queue, retries stuck workflows with
/// capped exponential backoff, sheds load through a circuit breaker when
/// the resume path is systematically failing, and raises an incident when
/// mitigation fails.
///
/// Accounting invariant (checked by tests): every workflow that failed at
/// least once is eventually accounted for exactly once —
///   stuck_workflows == mitigated + incidents + failed_then_skipped
///                      + failed_then_shed
///                      + (queued items with attempts > 0).
struct DiagnosticsReport {
  uint64_t observed_iterations = 0;
  size_t max_queue_depth = 0;
  uint64_t stuck_workflows = 0;      // required at least one retry
  uint64_t mitigated = 0;            // succeeded on retry
  uint64_t skipped_state_changed = 0;  // database resumed on its own
  uint64_t failed_then_skipped = 0;  // failed first, then state changed
  uint64_t failed_then_shed = 0;     // failed first, then shed by brownout
  uint64_t incidents = 0;            // retries exhausted -> on-call

  // Graceful-degradation telemetry.
  uint64_t backoff_retries_scheduled = 0;
  uint64_t backoff_delay_seconds_total = 0;  // sum of scheduled delays
  uint64_t shed_resumes = 0;          // dropped while the breaker was open
  uint64_t breaker_opens = 0;         // transitions into kOpen
  uint64_t breaker_state_changes = 0;  // all transitions

  // Overload-resilience telemetry (inert-zero unless the storm layer or
  // the multi-class queue is exercised).
  std::array<ClassDiagnostics, kNumResumeClasses> per_class;
  uint64_t storms_detected = 0;
  uint64_t slow_start_ticks = 0;     // iterations run under a quota
  uint64_t quota_deferrals = 0;      // drains deferred by the quota
  uint64_t catch_up_enqueued = 0;    // stale pre-warms swept at storm start
  uint64_t deleted_while_queued = 0;  // db vanished from the metadata store
  int max_brownout_level = 0;

  // Transport telemetry (inert-zero over the legacy direct-call path).
  uint64_t unacked_dispatches = 0;  // dispatches parked awaiting an ack
  uint64_t dispatch_timeouts = 0;   // ack never arrived; requeued unacked
  uint64_t late_acks = 0;           // ack after local resolution; no-op
  uint64_t stale_epoch_acks = 0;    // ack from a predecessor epoch; no-op

  // Failover telemetry (inert-zero without the node health tracker).
  uint64_t node_failovers = 0;     // journaled node-death declarations
  uint64_t failover_requeues = 0;  // databases re-placed off a dead node
  telemetry::Histogram queue_wait;          // enqueue -> first attempt
  telemetry::Histogram in_flight_duration;  // dispatch -> completion

  const ClassDiagnostics& cls(ResumeClass c) const {
    return per_class[static_cast<size_t>(c)];
  }

  /// Accumulates another report into this one (sharded-run merge):
  /// counters add, depth/level high-water marks take the max, and the
  /// wait/in-flight histograms merge bucket-wise.
  void Merge(const DiagnosticsReport& other);
};

/// The periodic proactive resume operation of the Management Service
/// (Algorithm 5), plus the workflow queue with stuck-workflow mitigation
/// and the overload-resilience layer (DESIGN.md section 8).
///
/// Each RunOnce(now):
///  1. selects physically paused databases whose predicted activity starts
///     within [now + k, now + k + period) from the metadata store,
///  2. enqueues a resume workflow per database into the bounded
///     multi-class priority queue (unless the circuit breaker is open or a
///     brownout level sheds the class, in which case the database simply
///     stays physically paused and resumes reactively), and
///  3. drains eligible queue entries in strict class-priority order by
///     invoking the resume callback.  A failed workflow is retried at a
///     later iteration after a capped exponential backoff with
///     deterministic jitter; `max_attempts` total attempts, then an
///     incident is raised.
///
/// Storms: when the detector trips (due-burst, login-spike, or breaker
/// recovery with a backlog), draining of the non-reactive classes is
/// throttled by a slow-start admission quota that doubles (with jitter)
/// every iteration instead of dumping the backlog onto freshly healed
/// nodes.  Reactive-login resumes are never throttled.
///
/// All scheduling is virtual-clock based: backoff deadlines, workflow
/// deadlines, and breaker cool-downs compare against the `now` passed in,
/// never against wall clock, so behavior is deterministic and
/// simulation-friendly.
///
/// The resume callback returns:
///   OK                  — resources allocated (LogicalPause entered),
///   FailedPrecondition  — the database is no longer physically paused
///                         (customer beat us to it); dropped silently,
///   anything else       — transient workflow failure; retried.
class ManagementService {
 public:
  using ResumeCallback =
      std::function<Status(const ResumeAttempt& attempt, EpochSeconds now)>;
  /// Legacy signature: (db, now).  Attempts of every class and hedges are
  /// routed through it identically; kept so pre-storm callers compile
  /// unchanged.
  using SimpleResumeCallback = std::function<Status(DbId db, EpochSeconds now)>;

  ManagementService(MetadataStore* metadata, ControlPlaneConfig config,
                    ResumeCallback resume, int max_attempts = 3);
  ManagementService(MetadataStore* metadata, ControlPlaneConfig config,
                    SimpleResumeCallback resume, int max_attempts = 3);

  /// One iteration of the proactive resume operation.  Returns the number
  /// of databases proactively resumed in this iteration (the Figure 11
  /// metric; reactive and maintenance successes are counted per class but
  /// excluded here).  Set `use_sql_scan` to exercise the faithful SQL
  /// path.
  Result<uint64_t> RunOnce(EpochSeconds now, bool use_sql_scan = false);

  /// Admits a reactive-login resume: the customer is waiting, so the
  /// workflow is never bounded, shed, throttled, or breaker-gated.  A
  /// proactive workflow already queued for the same database is promoted:
  /// the old item is retired through the skipped_state_changed path of
  /// its own class and a fresh reactive workflow starts.
  Status EnqueueReactive(DbId db, EpochSeconds now);

  /// Admits a maintenance touch (lowest class; first to be shed).
  Status EnqueueMaintenance(DbId db, EpochSeconds now);

  // --- Failover (node death, DESIGN.md section 12) ---

  /// Journals a node-death declaration (kNodeDead).  The failover engine
  /// calls this once per declaration, before re-queueing the node's
  /// databases, so the decision itself is exactly-once across a plane
  /// crash mid-failover.
  Status NoteNodeDead(uint32_t node, EpochSeconds now);

  /// Re-places one database off a dead node: admitted as
  /// reactive-priority work (customer impact is live or imminent), never
  /// shed or throttled, journaled kAccepted|kJfFailover so replay
  /// restores it exactly once.  Deduplicates against work already
  /// queued, in flight, or on the wire for the database — a failover
  /// must never fork a second workflow.  Does NOT count as a reactive
  /// arrival (plane-initiated work must not feed the storm detector).
  Status EnqueueFailover(DbId db, EpochSeconds now);

  /// Drains the reactive class and runs the deadline watchdog without an
  /// Algorithm 5 selection — the between-iterations pump a login-path
  /// driver calls as reactive work arrives.  Returns reactive workflows
  /// completed synchronously.
  uint64_t Pump(EpochSeconds now);

  /// Marks an asynchronously completing workflow (a reactive resume whose
  /// resources arrive later) as done: clears the in-flight entry and
  /// records its duration.  Unknown ids are ignored.
  void CompleteWorkflow(DbId db, EpochSeconds now);

  // --- Asynchronous dispatch (transport layer, DESIGN.md section 11) ---
  //
  // When the resume callback returns Status::Pending, the dispatch is on
  // the wire and its outcome deferred: the workflow is parked in the
  // unacked set (journal-wise it is simply kDispatched-without-outcome,
  // the same reconcilable state a crash leaves behind) until the
  // transport reports one of the calls below.

  /// The node's verdict for dispatch `request_id` of `db` arrived.
  /// Applies exactly the outcome bookkeeping the synchronous path would
  /// have applied at dispatch time.  Unknown (db, request_id) pairs are
  /// counted as late acks and ignored.
  void OnDispatchAck(DbId db, uint64_t request_id, const Status& outcome,
                     EpochSeconds now);

  /// Dispatch `request_id` of `db` exhausted its transmission budget with
  /// no ack.  The outcome is UNKNOWN, so this is NOT a failure: the item
  /// is requeued for immediate redispatch with its attempt count
  /// unchanged (node-side dedup makes the redispatch safe), and a crash
  /// before the redispatch leaves the journaled kDispatched for recovery
  /// to reconcile.
  void OnDispatchTimeout(DbId db, uint64_t request_id, EpochSeconds now);

  /// An ack arrived for a dispatch that already resolved locally (hedge
  /// win, timeout requeue).  Telemetry only; no state transition.
  void NoteLateAck(DbId db);
  /// An ack arrived carrying a predecessor incarnation's epoch.
  /// Telemetry only; no state transition.
  void NoteStaleEpochAck(DbId db);

  /// Dispatches currently awaiting an ack.
  size_t unacked() const { return unacked_.size(); }
  /// True while a dispatch for `db` is on the wire awaiting its ack.  A
  /// completion driver should hold its resource-arrival signal for the db
  /// until the ack resolves — delivered earlier it would complete an
  /// in-flight entry that does not exist yet.
  bool IsUnacked(DbId db) const { return unacked_.count(db) != 0; }

  /// Number of databases resumed per iteration so far (box-plot source).
  const Summary& resumed_per_iteration() const {
    return resumed_per_iteration_;
  }
  const DiagnosticsReport& diagnostics() const { return diagnostics_; }
  uint64_t total_resumed() const { return total_resumed_; }
  const ControlPlaneConfig& config() const { return config_; }

  BreakerState breaker_state() const { return breaker_; }
  bool storm_active() const { return storm_active_; }
  /// Non-reactive drains allowed this iteration while a storm is active
  /// and admission control is on; 0 outside a throttled storm.
  uint64_t current_quota() const { return quota_this_iteration_; }
  /// Brownout level right now (0 = none, 3 = shedding all but reactive).
  int brownout_level() const { return ComputeBrownoutLevel(); }

  /// Queue depth right now (items awaiting attempt or backing off, all
  /// classes; in-flight asynchronous workflows are not queued).
  size_t pending_workflows() const;
  size_t queued(ResumeClass cls) const {
    return queues_[static_cast<size_t>(cls)].size();
  }
  size_t in_flight() const { return in_flight_.size(); }

  /// Queued items that have failed at least once (the open term of the
  /// accounting invariant), total and per class.
  size_t pending_failed() const;
  size_t pending_failed(ResumeClass cls) const;

  /// True when the aggregate AND every per-class accounting invariant
  /// reconciles against the live queues.
  bool AccountingReconciles() const;

  /// Backoff before retry attempt `attempt` (1-based) of `db`:
  /// min(cap, base * 2^(attempt-1)) plus deterministic jitter.  Exposed
  /// for tests asserting the schedule.
  DurationSeconds BackoffDelay(DbId db, int attempt) const;

  /// Deadline budget of a class (meaningful with deadline hedging on).
  DurationSeconds DeadlineFor(ResumeClass cls) const;

  // --- Durability & recovery (DESIGN.md section 10) ---

  /// Attaches the control-plane journal: every externally visible
  /// transition is journaled before it takes effect, and the service
  /// fences itself (refusing all further work) the moment an append
  /// fails.  nullptr detaches and restores the exact legacy in-memory
  /// behavior.
  void AttachJournal(ControlPlaneJournal* journal) { journal_ = journal; }

  /// Incarnation number, bumped by every recovery; workflow identity for
  /// cross-incarnation dedup is (db, epoch).
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

  /// True once a journal append failed or an injected crash fired inside
  /// an operation: the control plane is dead.  Every entry point refuses
  /// (nothing is acknowledged after the journal stopped recording), and
  /// the owner must recover from disk.
  bool fenced() const { return fenced_; }
  const Status& fence_status() const { return fence_status_; }

  /// Applies one replayed journal record during recovery.  Must only be
  /// called on a freshly constructed (or checkpoint-restored) service
  /// with no journal attached; replay never re-journals.
  Status ApplyForRecovery(const JournalRecord& rec);

  struct ReconcileStats {
    uint64_t completed = 0;           // unacked dispatch found resumed
    uint64_t requeued = 0;            // unacked dispatch found not resumed
    uint64_t in_flight_requeued = 0;  // in-flight resume lost by the node
  };

  /// Final recovery step: resolves dispatched-but-unacked workflows
  /// against the simulated node state (`node_resumed`) so nothing is lost
  /// and nothing is double-resumed, and re-arms a conservative
  /// degradation posture (an open breaker stays open, the outcome window
  /// restarts empty, a storm in progress restarts its slow-start ramp).
  /// Reconcile decisions are journaled, so a crash during or after
  /// recovery replays them instead of re-deciding.
  ReconcileStats FinishRecovery(const std::function<bool(DbId)>& node_resumed,
                                EpochSeconds now);

 private:
  struct WorkItem {
    DbId db;
    ResumeClass cls = ResumeClass::kImminentProactive;
    int attempts = 0;
    EpochSeconds not_before = 0;  // backoff deadline (virtual clock)
    EpochSeconds enqueued_at = 0;
    EpochSeconds deadline = 0;  // 0 = none
    bool hedged = false;        // the single hedge has been spent
    bool wait_recorded = false;  // queue-wait histogram sampled
  };

  /// A dispatched workflow whose completion arrives asynchronously
  /// (reactive resumes when deadline hedging is on).
  struct InFlightItem {
    ResumeClass cls = ResumeClass::kReactiveLogin;
    int attempts = 0;
    EpochSeconds started = 0;
    EpochSeconds deadline = 0;
    bool hedged = false;
  };

  /// A dispatch whose resume callback returned kPending: the request is
  /// on the wire, the outcome unknown.  The item carries the full queued
  /// state so an ack can replay the synchronous outcome path and a
  /// timeout can requeue it unchanged.
  struct UnackedDispatch {
    WorkItem item;
    uint64_t request_id = 0;        // the primary dispatch
    uint64_t hedge_request_id = 0;  // a watchdog hedge, if one was spent
    EpochSeconds sent_at = 0;
    bool gated = false;            // dispatch counted against the breaker
    bool half_open_probe = false;  // dispatched as a half-open probe
    bool hedge_dispatch = false;   // the primary dispatch was itself a hedge
    /// A reactive login arrived while unacked: on resolution the database
    /// is promoted to (or re-enqueued as) reactive instead of its class.
    bool reactive_interest = false;
  };

  static size_t Idx(ResumeClass cls) { return static_cast<size_t>(cls); }
  ClassDiagnostics& Cls(ResumeClass cls) {
    return diagnostics_.per_class[Idx(cls)];
  }

  size_t NonReactiveQueued() const;
  int ComputeBrownoutLevel() const;
  bool ClassAdmittedAt(ResumeClass cls, int level) const;

  /// Full admission pipeline of a fresh non-reactive workflow: breaker
  /// shed, brownout shed, capacity bound with lower-class eviction.
  /// Returns false when the arrival was shed (accounted).
  bool AdmitNonReactive(DbId db, ResumeClass cls, EpochSeconds now,
                        bool catch_up = false);
  /// Frees one capacity slot by evicting the newest item of the lowest
  /// class strictly below `cls`; false if no lower-class item exists.
  bool EvictLowerClass(ResumeClass cls, EpochSeconds now);
  void EnqueueItem(DbId db, ResumeClass cls, EpochSeconds now,
                   int brownout_level = -1, bool catch_up = false,
                   bool failover = false);
  /// Retires a queued item without an attempt (promotion, deletion) via
  /// the skipped_state_changed path of its class.
  void RetireSkipped(const WorkItem& item, bool deleted = false);

  /// Next dispatch identity: (epoch << 32) | ++dispatch_seq_.  Pure
  /// counter — draws no randomness, so assigning ids never perturbs the
  /// deterministic schedule.
  uint64_t NextRequestId() { return (epoch_ << 32) | ++dispatch_seq_; }
  /// Applies a node verdict to an unacked dispatch — the asynchronous
  /// mirror of DrainClass's outcome handling.  `is_hedge` marks the
  /// verdict as belonging to the hedge dispatch.
  void ResolveUnacked(DbId db, UnackedDispatch u, bool is_hedge,
                      const Status& outcome, EpochSeconds now);
  /// Promotes a queued non-reactive item of `db` to a fresh reactive
  /// workflow (retire + re-enqueue), shared by EnqueueReactive and the
  /// unacked resolution paths.
  void PromoteToReactive(DbId db, EpochSeconds now);

  /// Drains up to the queue length of `cls` at entry; `quota` (when
  /// non-null) is the shared slow-start budget across the non-reactive
  /// classes.  Returns successful attempts.
  uint64_t DrainClass(ResumeClass cls, EpochSeconds now, uint64_t* quota);
  /// Hedges in-flight workflows past their deadline (one hedge each).
  void Watchdog(EpochSeconds now);

  void MaybeStartStorm(EpochSeconds now);
  /// Re-enqueues missed pre-warms (stale predicted starts) at storm
  /// start.
  void CatchUpSweep(EpochSeconds now);

  /// Records a success/failure outcome in the breaker window and opens
  /// the breaker when the failure ratio crosses the threshold.
  void RecordOutcome(bool success, EpochSeconds now);
  void SetBreaker(BreakerState next, EpochSeconds now);
  /// The in-memory half of a breaker transition (shared with replay).
  void ApplyBreaker(BreakerState next, EpochSeconds now);

  /// Journals one record (journal-before-apply).  Returns true when the
  /// caller may apply the transition; false when the service just fenced
  /// (append failed or an injected crash fired) — the caller must apply
  /// NOTHING and unwind.  Without an attached journal this is a no-op
  /// returning true (exact legacy behavior).
  bool Journal(JournalRecord rec);
  void Fence(const Status& status);
  /// Locates a queued item of `cls` by database id; nullptr if absent.
  WorkItem* FindQueued(ResumeClass cls, DbId db);
  /// Replay-time outcome application shared by kOutcomeOk and the
  /// reconcile events.
  void ReplaySuccess(const JournalRecord& rec, bool async);

  MetadataStore* metadata_;
  ControlPlaneConfig config_;
  ResumeCallback resume_;
  int max_attempts_;
  /// One FIFO deque per class, drained in class order; with a single
  /// populated class the drain is exactly the pre-storm FIFO.
  std::array<std::deque<WorkItem>, kNumResumeClasses> queues_;
  /// Databases currently queued, with their class: selection windows of
  /// consecutive iterations overlap, so a database backing off after a
  /// failure would otherwise be re-enqueued as a duplicate fresh
  /// workflow; the class enables reactive promotion.
  std::unordered_map<DbId, ResumeClass> queued_dbs_;
  std::unordered_map<DbId, InFlightItem> in_flight_;
  /// Dispatches on the wire awaiting an ack (kPending callback results).
  std::unordered_map<DbId, UnackedDispatch> unacked_;
  uint64_t dispatch_seq_ = 0;
  /// Asynchronously acked proactive successes since the last RunOnce,
  /// folded into that iteration's resumed count (and its journaled
  /// kIteration stats) so replay stays exact.
  uint64_t async_resumed_pending_ = 0;
  Summary resumed_per_iteration_;
  DiagnosticsReport diagnostics_;
  uint64_t total_resumed_ = 0;

  BreakerState breaker_ = BreakerState::kClosed;
  std::deque<bool> outcomes_;       // sliding window, true = failure
  size_t window_failures_ = 0;
  EpochSeconds breaker_opened_at_ = 0;
  int half_open_probes_issued_ = 0;
  int half_open_successes_ = 0;

  // Storm machinery.
  bool storm_active_ = false;
  uint64_t storm_seq_ = 0;  // jitter key: distinct storms ramp differently
  int ramp_step_ = 0;
  uint64_t quota_this_iteration_ = 0;
  /// End time of the last storm (cooldown anchor); far past initially.
  EpochSeconds storm_ended_at_;
  uint64_t reactive_arrivals_ = 0;  // since the last RunOnce

  // Durability & recovery state (inert when journal_ == nullptr).
  ControlPlaneJournal* journal_ = nullptr;
  uint64_t epoch_ = 0;
  bool fenced_ = false;
  Status fence_status_ = Status::OK();
  /// Databases with a journaled kDispatched but no journaled outcome yet,
  /// populated only during replay; FinishRecovery resolves them against
  /// the node state.  Value: the class the dispatch targeted.
  std::unordered_map<DbId, ResumeClass> recovery_pending_;

  friend struct ServiceStateCodec;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
