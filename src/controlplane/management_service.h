#ifndef PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
#define PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_

#include <deque>
#include <functional>
#include <string_view>
#include <unordered_set>

#include "common/config.h"
#include "common/stats.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {

/// Circuit-breaker state of the resume-workflow path.
enum class BreakerState {
  kClosed,    // normal operation
  kOpen,      // shedding: fresh resumes dropped, retries held
  kHalfOpen,  // probing: a few attempts allowed to test recovery
};

std::string_view BreakerStateName(BreakerState state);

/// Outcome counters of the diagnostics and mitigation runner (Section 7):
/// it monitors the proactive-resume queue, retries stuck workflows with
/// capped exponential backoff, sheds load through a circuit breaker when
/// the resume path is systematically failing, and raises an incident when
/// mitigation fails.
///
/// Accounting invariant (checked by tests): every workflow that failed at
/// least once is eventually accounted for exactly once —
///   stuck_workflows == mitigated + incidents + failed_then_skipped
///                      + (queued items with attempts > 0).
struct DiagnosticsReport {
  uint64_t observed_iterations = 0;
  size_t max_queue_depth = 0;
  uint64_t stuck_workflows = 0;      // required at least one retry
  uint64_t mitigated = 0;            // succeeded on retry
  uint64_t skipped_state_changed = 0;  // database resumed on its own
  uint64_t failed_then_skipped = 0;  // failed first, then state changed
  uint64_t incidents = 0;            // retries exhausted -> on-call

  // Graceful-degradation telemetry.
  uint64_t backoff_retries_scheduled = 0;
  uint64_t backoff_delay_seconds_total = 0;  // sum of scheduled delays
  uint64_t shed_resumes = 0;          // dropped while the breaker was open
  uint64_t breaker_opens = 0;         // transitions into kOpen
  uint64_t breaker_state_changes = 0;  // all transitions
};

/// The periodic proactive resume operation of the Management Service
/// (Algorithm 5), plus the workflow queue with stuck-workflow mitigation.
///
/// Each RunOnce(now):
///  1. selects physically paused databases whose predicted activity starts
///     within [now + k, now + k + period) from the metadata store,
///  2. enqueues a resume workflow per database (unless the circuit
///     breaker is open, in which case fresh work is shed — the database
///     simply stays physically paused and resumes reactively), and
///  3. drains the eligible queue entries by invoking the resume callback.
///     A failed workflow is retried at a later iteration after a capped
///     exponential backoff with deterministic jitter; `max_attempts`
///     total attempts, then an incident is raised.
///
/// All scheduling is virtual-clock based: backoff deadlines and breaker
/// cool-downs compare against the `now` passed to RunOnce, never against
/// wall clock, so behavior is deterministic and simulation-friendly.
///
/// The resume callback returns:
///   OK                  — resources allocated (LogicalPause entered),
///   FailedPrecondition  — the database is no longer physically paused
///                         (customer beat us to it); dropped silently,
///   anything else       — transient workflow failure; retried.
class ManagementService {
 public:
  using ResumeCallback =
      std::function<Status(DbId db, EpochSeconds now)>;

  ManagementService(MetadataStore* metadata, ControlPlaneConfig config,
                    ResumeCallback resume, int max_attempts = 3);

  /// One iteration of the proactive resume operation.  Returns the number
  /// of databases proactively resumed in this iteration (the Figure 11
  /// metric).  Set `use_sql_scan` to exercise the faithful SQL path.
  Result<uint64_t> RunOnce(EpochSeconds now, bool use_sql_scan = false);

  /// Number of databases resumed per iteration so far (box-plot source).
  const Summary& resumed_per_iteration() const {
    return resumed_per_iteration_;
  }
  const DiagnosticsReport& diagnostics() const { return diagnostics_; }
  uint64_t total_resumed() const { return total_resumed_; }
  const ControlPlaneConfig& config() const { return config_; }

  BreakerState breaker_state() const { return breaker_; }

  /// Queue depth right now (items awaiting attempt or backing off).
  size_t pending_workflows() const { return queue_.size(); }

  /// Queued items that have failed at least once (the open term of the
  /// accounting invariant).
  size_t pending_failed() const;

  /// Backoff before retry attempt `attempt` (1-based) of `db`:
  /// min(cap, base * 2^(attempt-1)) plus deterministic jitter.  Exposed
  /// for tests asserting the schedule.
  DurationSeconds BackoffDelay(DbId db, int attempt) const;

 private:
  struct WorkItem {
    DbId db;
    int attempts = 0;
    EpochSeconds not_before = 0;  // backoff deadline (virtual clock)
  };

  /// Records a success/failure outcome in the breaker window and opens
  /// the breaker when the failure ratio crosses the threshold.
  void RecordOutcome(bool success, EpochSeconds now);
  void SetBreaker(BreakerState next, EpochSeconds now);

  MetadataStore* metadata_;
  ControlPlaneConfig config_;
  ResumeCallback resume_;
  int max_attempts_;
  std::deque<WorkItem> queue_;
  // Databases currently in queue_: selection windows of consecutive
  // iterations overlap, so a database backing off after a failure would
  // otherwise be re-enqueued as a duplicate fresh workflow.
  std::unordered_set<DbId> queued_dbs_;
  Summary resumed_per_iteration_;
  DiagnosticsReport diagnostics_;
  uint64_t total_resumed_ = 0;

  BreakerState breaker_ = BreakerState::kClosed;
  std::deque<bool> outcomes_;       // sliding window, true = failure
  size_t window_failures_ = 0;
  EpochSeconds breaker_opened_at_ = 0;
  int half_open_probes_issued_ = 0;
  int half_open_successes_ = 0;
};

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_MANAGEMENT_SERVICE_H_
