#ifndef PRORP_CONTROLPLANE_RECOVERY_TORTURE_H_
#define PRORP_CONTROLPLANE_RECOVERY_TORTURE_H_

#include <map>
#include <string>

#include "common/result.h"
#include "controlplane/durable_control_plane.h"

namespace prorp::controlplane {

/// One control-plane crash-torture run: a deterministic workload
/// (proactive selections, reactive logins, pause/resume churn, optional
/// storm and resume-path outage) drives a DurableControlPlane; an armed
/// crash point kills the control plane mid-transition; recovery reopens
/// the directory and the workload continues, as many times as it takes.
struct RecoveryTortureOptions {
  std::string dir;    // working directory for journal + checkpoint
  uint64_t seed = 1;
  int num_dbs = 48;
  int steps = 120;    // virtual-clock steps of one minute each
  bool storm = false;   // inject a login-spike storm mid-run
  bool outage = false;  // resume-path outage window mid-run
  /// Probability a journal WAL append/sync fails (IoError) per op, via a
  /// per-incarnation FaultPlan; each failure fail-stops the incarnation.
  double journal_fault_probability = 0.0;
  uint64_t checkpoint_every = 64;
  /// Crash point to arm ("" = none), its 1-based nth hit, and payload
  /// (for kCpJournalPreSync: the surviving-prefix selector).
  std::string crash_point;
  uint64_t crash_nth = 1;
  uint64_t crash_payload = 0;
  int max_recoveries = 64;
};

struct RecoveryTortureResult {
  bool crash_fired = false;
  int recoveries = 0;
  /// Reactive logins the control plane acknowledged (EnqueueReactive
  /// returned OK).
  uint64_t accepted_reactive = 0;
  /// Acknowledged reactive logins whose database was still not resumed
  /// after the final drain — must be zero (zero accepted-workflow loss).
  uint64_t lost_reactive = 0;
  /// Non-hedge dispatches that re-executed an already-performed resume of
  /// the same workflow — must be zero (zero double resumes).
  uint64_t duplicate_resumes = 0;
  /// Workflows that exhausted their retries (escalated, not silently
  /// lost); the torture config is tuned so reactive logins never get here.
  uint64_t incidents = 0;
  /// Aggregate and per-class accounting invariant after the final drain.
  bool accounting_ok = false;
  /// A breaker that was open at a crash recovered closed — must be false
  /// (conservative restore; satellite of DESIGN.md section 10).
  bool breaker_recovered_closed_early = false;
  uint64_t total_resumed = 0;
  DurableControlPlane::RecoveryStats last_recovery;
};

Result<RecoveryTortureResult> RunRecoveryTorture(
    const RecoveryTortureOptions& options);

/// Counting pass: runs the workload crash-free with the crash-point
/// registry in counting mode and returns hits per control-plane point.
/// The torture matrix uses it to spread crash_nth over hits that actually
/// occur.
Result<std::map<std::string, uint64_t>> ObserveControlPlaneCrashPoints(
    const RecoveryTortureOptions& options);

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_RECOVERY_TORTURE_H_
