#ifndef PRORP_CONTROLPLANE_CHECKPOINT_H_
#define PRORP_CONTROLPLANE_CHECKPOINT_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "controlplane/management_service.h"
#include "controlplane/metadata_store.h"

namespace prorp::controlplane {

/// Identity of a loaded checkpoint.
struct LoadedCheckpoint {
  /// Incarnation that wrote the checkpoint.
  uint64_t epoch = 0;
  /// Journal records with seq <= last_seq are folded into the checkpoint;
  /// replay after a crash between checkpoint publication and journal
  /// truncation must skip them (that skip is what makes recovery
  /// exactly-once).
  uint64_t last_seq = 0;
};

/// Writes one atomic control-plane checkpoint: metadata-store rows plus
/// the full externally visible ManagementService state (queues, in-flight
/// workflows, diagnostics, breaker and storm posture), CRC-framed and
/// published by tmp-write + fsync + rename + parent-dir fsync.  Crash
/// points kSnapshotMidCopy and kCpCheckpointMidWrite both fire mid-body,
/// leaving a partial .tmp the next recovery ignores.
Status SaveCheckpoint(const std::string& path, const MetadataStore& meta,
                      const ManagementService& svc, uint64_t epoch,
                      uint64_t last_seq);

/// Loads a checkpoint into a freshly opened store and service.  Returns
/// NotFound when no checkpoint exists (cold start); Corruption when the
/// published file fails its CRC.
Result<LoadedCheckpoint> LoadCheckpoint(const std::string& path,
                                        MetadataStore* meta,
                                        ManagementService* svc);

}  // namespace prorp::controlplane

#endif  // PRORP_CONTROLPLANE_CHECKPOINT_H_
