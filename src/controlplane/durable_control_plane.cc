#include "controlplane/durable_control_plane.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace prorp::controlplane {

Result<std::unique_ptr<DurableControlPlane>> DurableControlPlane::Open(
    const Options& options, ManagementService::ResumeCallback resume,
    const std::function<bool(DbId)>& node_resumed, EpochSeconds now) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durable control plane needs a directory");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create control-plane directory");
  }
  std::unique_ptr<DurableControlPlane> plane(new DurableControlPlane());
  plane->options_ = options;
  plane->journal_path_ = JournalPathFor(options.dir);
  plane->checkpoint_path_ = CheckpointPathFor(options.dir);
  PRORP_ASSIGN_OR_RETURN(plane->metadata_, MetadataStore::Open());
  plane->service_ = std::make_unique<ManagementService>(
      plane->metadata_.get(), options.config, std::move(resume),
      options.max_attempts);

  // 1. Newest checkpoint (if any) is the replay base.
  uint64_t base_epoch = 0;
  uint64_t last_seq = 0;
  Result<LoadedCheckpoint> ckpt = LoadCheckpoint(
      plane->checkpoint_path_, plane->metadata_.get(), plane->service_.get());
  if (ckpt.ok()) {
    base_epoch = ckpt->epoch;
    last_seq = ckpt->last_seq;
    plane->recovery_stats_.checkpoint_loaded = true;
  } else if (ckpt.status().code() != StatusCode::kNotFound) {
    return ckpt.status();
  }

  // 2. Replay the journal on top, skipping records the checkpoint already
  // folded in (the exactly-once half of the crash-between-checkpoint-and-
  // truncate window).  Metadata records route to the store, everything
  // else to the service; reconcile decisions of an interrupted previous
  // recovery replay here too, which is what makes recovery idempotent.
  uint64_t max_seq = last_seq;
  uint64_t max_epoch = base_epoch;
  ManagementService* svc = plane->service_.get();
  MetadataStore* meta = plane->metadata_.get();
  DurableControlPlane* p = plane.get();
  PRORP_RETURN_IF_ERROR(
      ControlPlaneJournal::Replay(
          plane->journal_path_,
          [&](uint64_t seq, const JournalRecord& rec) -> Status {
            max_epoch = std::max(max_epoch, rec.epoch);
            if (seq <= last_seq) {
              ++p->recovery_stats_.skipped;
              return Status::OK();
            }
            max_seq = std::max(max_seq, seq);
            ++p->recovery_stats_.replayed;
            switch (rec.event) {
              case JournalEvent::kMetaUpsert:
                return meta->RestoreUpsert(
                    rec.db, static_cast<int32_t>(rec.cls),
                    rec.predicted_start);
              case JournalEvent::kMetaRemove:
                return meta->RestoreRemove(rec.db);
              default:
                return svc->ApplyForRecovery(rec);
            }
          })
          .status());

  // 3. New incarnation: epoch strictly above anything ever journaled, so
  // (db, epoch) never collides across restarts.
  uint64_t epoch = max_epoch + 1;
  PRORP_ASSIGN_OR_RETURN(
      plane->journal_,
      ControlPlaneJournal::Open(plane->journal_path_, options.sync_mode));
  plane->journal_->set_next_seq(max_seq + 1);
  if (options.fault_plan != nullptr) {
    plane->journal_->set_fault_plan(options.fault_plan);
  }
  plane->service_->AttachJournal(plane->journal_.get());
  plane->service_->set_epoch(epoch);
  plane->metadata_->AttachJournal(plane->journal_.get(), epoch);
  plane->last_checkpoint_seq_ = last_seq;
  plane->recovery_stats_.epoch = epoch;

  JournalRecord start;
  start.event = JournalEvent::kEpochStart;
  start.epoch = epoch;
  start.time = now;
  PRORP_RETURN_IF_ERROR(plane->journal_->Append(start));

  // 4. Reconcile dispatched-but-unacked and lost in-flight workflows
  // against the node state.  A crash inside reconciliation surfaces as a
  // fence; the caller reopens and the journaled prefix of decisions
  // replays instead of being re-decided.
  plane->recovery_stats_.reconcile =
      plane->service_->FinishRecovery(node_resumed, now);
  if (plane->service_->fenced()) {
    return plane->service_->fence_status();
  }
  return plane;
}

Status DurableControlPlane::Checkpoint() {
  if (!journal_->healthy()) return journal_->dead_status();
  if (service_->fenced()) return service_->fence_status();
  // In buffered mode the journal tail may still sit in user-space
  // buffers; a checkpoint subsumes those records, so flush first to keep
  // the on-disk journal never behind the checkpoint's last_seq.
  PRORP_RETURN_IF_ERROR(journal_->Sync());
  uint64_t last_seq = journal_->next_seq() - 1;
  PRORP_RETURN_IF_ERROR(SaveCheckpoint(checkpoint_path_, *metadata_,
                                       *service_, recovery_stats_.epoch,
                                       last_seq));
  // Crash window: checkpoint published, journal not yet truncated.  Safe —
  // replay skips seq <= last_seq.
  PRORP_RETURN_IF_ERROR(journal_->TruncateAfterCheckpoint());
  last_checkpoint_seq_ = last_seq;
  return Status::OK();
}

Status DurableControlPlane::MaybeCheckpoint() {
  if (options_.checkpoint_every == 0) return Status::OK();
  uint64_t appended = journal_->next_seq() - 1;
  if (appended < last_checkpoint_seq_ ||
      appended - last_checkpoint_seq_ < options_.checkpoint_every) {
    return Status::OK();
  }
  return Checkpoint();
}

}  // namespace prorp::controlplane
