#include "controlplane/journal.h"

#include <unistd.h>

#include <cstring>

#include "faults/crash_points.h"

namespace prorp::controlplane {
namespace {

/// Fixed record layout inside the WalRecord value:
///   [u8 event][u64 epoch][u32 db][u8 cls][u32 flags][i32 attempt]
///   [i64 time][i64 enqueued_at][i64 not_before][i64 deadline]
///   [i64 predicted_start][u64 stats[4]]
constexpr size_t kRecordBytes = 1 + 8 + 4 + 1 + 4 + 4 + 8 * 5 + 8 * 4;

template <typename T>
void Put(std::vector<uint8_t>& out, T v) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T Get(const uint8_t*& p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  p += sizeof(T);
  return v;
}

storage::WalRecord Encode(uint64_t seq, const JournalRecord& r) {
  storage::WalRecord wr;
  wr.type = storage::WalRecord::Type::kInsert;
  wr.key = static_cast<int64_t>(seq);
  wr.value.reserve(kRecordBytes);
  Put<uint8_t>(wr.value, static_cast<uint8_t>(r.event));
  Put<uint64_t>(wr.value, r.epoch);
  Put<uint32_t>(wr.value, r.db);
  Put<uint8_t>(wr.value, r.cls);
  Put<uint32_t>(wr.value, r.flags);
  Put<int32_t>(wr.value, r.attempt);
  Put<int64_t>(wr.value, r.time);
  Put<int64_t>(wr.value, r.enqueued_at);
  Put<int64_t>(wr.value, r.not_before);
  Put<int64_t>(wr.value, r.deadline);
  Put<int64_t>(wr.value, r.predicted_start);
  for (uint64_t s : r.stats) Put<uint64_t>(wr.value, s);
  return wr;
}

Result<JournalRecord> Decode(const storage::WalRecord& wr) {
  if (wr.type != storage::WalRecord::Type::kInsert ||
      wr.value.size() != kRecordBytes) {
    return Status::Corruption("malformed control-plane journal record");
  }
  const uint8_t* p = wr.value.data();
  JournalRecord r;
  r.event = static_cast<JournalEvent>(Get<uint8_t>(p));
  r.epoch = Get<uint64_t>(p);
  r.db = Get<uint32_t>(p);
  r.cls = Get<uint8_t>(p);
  r.flags = Get<uint32_t>(p);
  r.attempt = Get<int32_t>(p);
  r.time = Get<int64_t>(p);
  r.enqueued_at = Get<int64_t>(p);
  r.not_before = Get<int64_t>(p);
  r.deadline = Get<int64_t>(p);
  r.predicted_start = Get<int64_t>(p);
  for (uint64_t& s : r.stats) s = Get<uint64_t>(p);
  return r;
}

}  // namespace

std::string_view JournalEventName(JournalEvent event) {
  switch (event) {
    case JournalEvent::kEpochStart:
      return "epoch_start";
    case JournalEvent::kMetaUpsert:
      return "meta_upsert";
    case JournalEvent::kMetaRemove:
      return "meta_remove";
    case JournalEvent::kAccepted:
      return "accepted";
    case JournalEvent::kAdmissionShed:
      return "admission_shed";
    case JournalEvent::kEvicted:
      return "evicted";
    case JournalEvent::kRetired:
      return "retired";
    case JournalEvent::kDispatched:
      return "dispatched";
    case JournalEvent::kOutcomeOk:
      return "outcome_ok";
    case JournalEvent::kOutcomeFailed:
      return "outcome_failed";
    case JournalEvent::kHedge:
      return "hedge";
    case JournalEvent::kCompleted:
      return "completed";
    case JournalEvent::kBreaker:
      return "breaker";
    case JournalEvent::kStormStart:
      return "storm_start";
    case JournalEvent::kStormEnd:
      return "storm_end";
    case JournalEvent::kIteration:
      return "iteration";
    case JournalEvent::kReconcileComplete:
      return "reconcile_complete";
    case JournalEvent::kReconcileRequeue:
      return "reconcile_requeue";
    case JournalEvent::kNodeDead:
      return "node_dead";
  }
  return "unknown";
}

Result<std::unique_ptr<ControlPlaneJournal>> ControlPlaneJournal::Open(
    const std::string& path, SyncMode mode) {
  PRORP_ASSIGN_OR_RETURN(auto wal, storage::WriteAheadLog::Open(path));
  return std::unique_ptr<ControlPlaneJournal>(
      new ControlPlaneJournal(std::move(wal), path, mode));
}

Status ControlPlaneJournal::Append(const JournalRecord& record) {
  if (!dead_.ok()) return dead_;
  uint64_t pre_size = 0;
  if (auto size = wal_->SizeBytes(); size.ok()) pre_size = *size;
  Status s = wal_->Append(Encode(next_seq_, record));
  if (!s.ok()) {
    dead_ = s;
    return dead_;
  }
  // Crash simulation: the frame reached the journal file but the process
  // dies before the fsync (and before the transition is acknowledged).
  // The armed payload picks the surviving prefix: 0 keeps the whole frame
  // (durable but unacknowledged — recovery replays it), n > 0 keeps
  // n % frame_size bytes (a torn tail recovery must trim).
  if (Status crash = faults::HitCrashPoint(faults::kCpJournalPreSync);
      !crash.ok()) {
    uint64_t payload = faults::CrashPointRegistry::Global().payload();
    if (payload > 0) {
      uint64_t frame_size = pre_size;
      if (auto size = wal_->SizeBytes(); size.ok()) {
        frame_size = *size - pre_size;
      }
      if (frame_size > 0) {
        (void)!::truncate(path_.c_str(),
                          static_cast<off_t>(pre_size + payload % frame_size));
      }
    }
    dead_ = crash;
    return dead_;
  }
  if (mode_ == SyncMode::kDurable) {
    s = wal_->Sync();
    if (!s.ok()) {
      dead_ = s;
      return dead_;
    }
  }
  ++next_seq_;
  ++appended_;
  return Status::OK();
}

Status ControlPlaneJournal::Sync() {
  if (!dead_.ok()) return dead_;
  Status s = wal_->Sync();
  if (!s.ok()) dead_ = s;
  return s;
}

Status ControlPlaneJournal::TruncateAfterCheckpoint() {
  if (!dead_.ok()) return dead_;
  Status s = wal_->Truncate();
  if (!s.ok()) dead_ = s;
  return s;
}

Result<uint64_t> ControlPlaneJournal::Replay(
    const std::string& path,
    const std::function<Status(uint64_t seq, const JournalRecord&)>& apply) {
  return storage::WriteAheadLog::Replay(
      path, [&](const storage::WalRecord& wr) -> Status {
        PRORP_ASSIGN_OR_RETURN(JournalRecord rec, Decode(wr));
        return apply(static_cast<uint64_t>(wr.key), rec);
      });
}

}  // namespace prorp::controlplane
