#ifndef PRORP_WORKLOAD_TRACE_IO_H_
#define PRORP_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "workload/trace.h"

namespace prorp::workload {

/// Writes a fleet of traces as CSV with header
/// `db_id,pattern,session_start,session_end` — one row per session, rows
/// grouped by database.  This is the interchange format for running the
/// figure benches on real (anonymized) telemetry instead of the synthetic
/// generators: export your sessions in this shape and load them with
/// LoadFleetCsv.
Status SaveFleetCsv(const std::vector<DbTrace>& traces,
                    const std::string& path);

/// Loads a fleet from the CSV format above.  Validates monotone,
/// non-overlapping sessions per database; db_ids are compacted to a dense
/// 0..n-1 range (the simulator requires dense ids).  Unknown pattern
/// names map to `sporadic`.
Result<std::vector<DbTrace>> LoadFleetCsv(const std::string& path);

/// Parses a pattern name as produced by PatternTypeName; false if
/// unknown.
bool ParsePatternType(const std::string& name, PatternType* out);

}  // namespace prorp::workload

#endif  // PRORP_WORKLOAD_TRACE_IO_H_
