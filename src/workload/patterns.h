#ifndef PRORP_WORKLOAD_PATTERNS_H_
#define PRORP_WORKLOAD_PATTERNS_H_

#include "common/random.h"
#include "workload/trace.h"

namespace prorp::workload {

/// Generates the activity trace of one database of the given pattern over
/// [from, to).  `rng` is the database's private stream; the same seed
/// reproduces the same trace.  The trace's created_at is the first session
/// start (>= from).
DbTrace GenerateTrace(PatternType pattern, uint32_t db_id, EpochSeconds from,
                      EpochSeconds to, Rng& rng);

}  // namespace prorp::workload

#endif  // PRORP_WORKLOAD_PATTERNS_H_
