#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace prorp::workload {

bool ParsePatternType(const std::string& name, PatternType* out) {
  static const std::pair<const char*, PatternType> kNames[] = {
      {"daily_business", PatternType::kDailyBusiness},
      {"daily", PatternType::kDaily},
      {"weekly", PatternType::kWeekly},
      {"always_busy", PatternType::kAlwaysBusy},
      {"sporadic", PatternType::kSporadic},
      {"bursty", PatternType::kBursty},
      {"dev_test", PatternType::kDevTest},
  };
  for (const auto& [candidate, type] : kNames) {
    if (name == candidate) {
      *out = type;
      return true;
    }
  }
  return false;
}

Status SaveFleetCsv(const std::vector<DbTrace>& traces,
                    const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot create " + path);
  std::fputs("db_id,pattern,session_start,session_end\n", f);
  for (const DbTrace& trace : traces) {
    for (const Session& s : trace.sessions) {
      std::fprintf(f, "%u,%s,%lld,%lld\n", trace.db_id,
                   std::string(PatternTypeName(trace.pattern)).c_str(),
                   static_cast<long long>(s.start),
                   static_cast<long long>(s.end));
    }
  }
  if (std::fclose(f) != 0) return Status::IoError("close failed");
  return Status::OK();
}

Result<std::vector<DbTrace>> LoadFleetCsv(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  char line[512];
  // Header.
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return Status::InvalidArgument("empty trace file");
  }
  if (std::string(line).rfind("db_id,pattern,", 0) != 0) {
    std::fclose(f);
    return Status::InvalidArgument("unexpected CSV header");
  }
  // Group rows by original db id, preserving order.
  std::map<uint32_t, DbTrace> by_id;
  int line_no = 1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    unsigned db_id;
    char pattern_buf[64];
    long long start, end;
    if (std::sscanf(line, "%u,%63[^,],%lld,%lld", &db_id, pattern_buf,
                    &start, &end) != 4) {
      std::fclose(f);
      return Status::InvalidArgument("malformed row at line " +
                                     std::to_string(line_no));
    }
    if (end <= start) {
      std::fclose(f);
      return Status::InvalidArgument("session end <= start at line " +
                                     std::to_string(line_no));
    }
    DbTrace& trace = by_id[db_id];
    PatternType pattern = PatternType::kSporadic;
    (void)ParsePatternType(pattern_buf, &pattern);
    trace.pattern = pattern;
    if (!trace.sessions.empty() && start < trace.sessions.back().end) {
      std::fclose(f);
      return Status::InvalidArgument(
          "overlapping or unsorted sessions at line " +
          std::to_string(line_no));
    }
    trace.sessions.push_back({start, end});
  }
  std::fclose(f);

  std::vector<DbTrace> fleet;
  fleet.reserve(by_id.size());
  for (auto& [original_id, trace] : by_id) {
    trace.db_id = static_cast<uint32_t>(fleet.size());  // densify
    trace.created_at =
        trace.sessions.empty() ? 0 : trace.sessions.front().start;
    fleet.push_back(std::move(trace));
  }
  return fleet;
}

}  // namespace prorp::workload
