#ifndef PRORP_WORKLOAD_TRACE_SOURCE_H_
#define PRORP_WORKLOAD_TRACE_SOURCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "workload/region.h"
#include "workload/trace.h"

namespace prorp::workload {

/// Pull iterator over one database's activity trace.  Sessions come out
/// normalized exactly as NormalizeSessions leaves a materialized trace:
/// non-overlapping, ascending, clipped to the generation window, with the
/// minimum inter-session gap enforced.
class SessionCursor {
 public:
  virtual ~SessionCursor() = default;

  /// Writes the next session and returns true; false at end of trace.
  virtual bool Next(Session* out) = 0;
};

/// A fleet of activity traces accessed database-by-database.  The fleet
/// simulator consumes sessions strictly in order per database, so a
/// cursor is all it needs — which is what lets a million-database fleet
/// run without ever materializing millions of session vectors.
///
/// Open must be pure (the same db yields the same sessions every time)
/// and safe to call concurrently for distinct databases: sharded
/// simulation runs open disjoint db ranges from worker threads.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  virtual size_t num_dbs() const = 0;

  virtual std::unique_ptr<SessionCursor> Open(uint32_t db_id) const = 0;
};

/// Adapter over a pre-generated fleet (GenerateFleet, tests, trace
/// files).  Borrows the vector; the caller keeps it alive.
class MaterializedTraceSource final : public TraceSource {
 public:
  explicit MaterializedTraceSource(const std::vector<DbTrace>& traces)
      : traces_(&traces) {}

  size_t num_dbs() const override { return traces_->size(); }

  std::unique_ptr<SessionCursor> Open(uint32_t db_id) const override;

 private:
  const std::vector<DbTrace>* traces_;
};

/// Generates a region's fleet on the fly: O(1) state per open cursor
/// (the per-pattern generator buffers at most one day of sessions)
/// instead of O(sessions) per database materialized up front.
///
/// Database k's trace is a pure function of (seed, k): the per-database
/// stream is derived with Rng::ForkStream, so any shard of a sharded run
/// reconstructs exactly the traces of a serial run without coordination.
/// Note this derivation differs from GenerateFleet's sequential Fork, so
/// the two produce statistically equivalent but not identical fleets.
///
/// Sessions are normalized on the fly with the same clip/merge/min-gap
/// rules as NormalizeSessions — valid because every archetype generator
/// emits sessions in ascending start order.
class StreamingFleetSource final : public TraceSource {
 public:
  StreamingFleetSource(RegionProfile profile, size_t num_dbs,
                       EpochSeconds from, EpochSeconds to, uint64_t seed,
                       EpochSeconds new_from = 0);

  size_t num_dbs() const override { return num_dbs_; }

  std::unique_ptr<SessionCursor> Open(uint32_t db_id) const override;

  /// The archetype database `db_id` was assigned (test introspection).
  PatternType PatternOf(uint32_t db_id) const;

 private:
  RegionProfile profile_;
  double total_weight_ = 0;
  size_t num_dbs_;
  EpochSeconds from_;
  EpochSeconds to_;
  EpochSeconds new_from_;
  uint64_t seed_;
};

/// Materializes one database's full trace from a source (tests and
/// offline analysis; the simulator itself never needs this).
std::vector<Session> CollectSessions(const TraceSource& source,
                                     uint32_t db_id);

}  // namespace prorp::workload

#endif  // PRORP_WORKLOAD_TRACE_SOURCE_H_
