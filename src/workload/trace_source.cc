#include "workload/trace_source.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/random.h"

namespace prorp::workload {
namespace {

// ---------------------------------------------------------------------
// Raw pattern generators: resumable forms of the archetype generators in
// patterns.cc.  Each emits the same *shape* of trace — day-batch
// archetypes buffer one day of sessions at a time, cursor archetypes
// carry a single running timestamp — and every one emits sessions in
// ascending start order, which the normalizing wrapper below relies on.
// ---------------------------------------------------------------------

/// Unclipped, unmerged sessions in ascending start order.
class RawGen {
 public:
  virtual ~RawGen() = default;
  virtual bool Next(Session* out) = 0;
};

/// Archetypes generated a day at a time (DailyBusiness, Daily, Weekly,
/// Bursty, DevTest): advances the day cursor until a day yields sessions,
/// buffering at most one day (<= ~130 sessions for a bursty day).
class DayBatchGen : public RawGen {
 public:
  DayBatchGen(EpochSeconds from, EpochSeconds to)
      : day_(StartOfDay(from)), to_(to) {}

  bool Next(Session* out) override {
    while (idx_ >= buf_.size()) {
      if (day_ >= to_) return false;
      buf_.clear();
      idx_ = 0;
      GenerateDay(day_);
      day_ += Days(1);
    }
    *out = buf_[idx_++];
    return true;
  }

 protected:
  virtual void GenerateDay(EpochSeconds day) = 0;

  std::vector<Session> buf_;

 private:
  EpochSeconds day_;
  EpochSeconds to_;
  size_t idx_ = 0;
};

/// Weekday business usage with loose within-day timing and intraday
/// breaks (patterns.cc DailyBusiness).
class DailyBusinessGen final : public DayBatchGen {
 public:
  DailyBusinessGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : DayBatchGen(from, to), rng_(rng) {
    base_ = Hours(5) + rng_.NextInt(0, Hours(4));
    spread_ = rng_.NextBool(0.5)
                  ? Minutes(40) + rng_.NextInt(0, Minutes(80))
                  : Hours(9) + rng_.NextInt(0, Hours(4));
  }

 protected:
  void GenerateDay(EpochSeconds day) override {
    if (IsWeekend(day)) {
      if (rng_.NextBool(0.05)) {
        EpochSeconds s = day + Hours(10) + rng_.NextInt(0, Hours(6));
        buf_.push_back({s, s + rng_.NextInt(Minutes(10), Hours(1))});
      }
      return;
    }
    if (rng_.NextBool(0.12)) return;
    EpochSeconds start = day + base_ + rng_.NextInt(0, spread_);
    DurationSeconds work_span = Hours(3) + rng_.NextInt(0, Hours(5));
    EpochSeconds end = start + work_span;
    EpochSeconds cuts[2];
    size_t num_cuts = 0;
    if (rng_.NextBool(0.75)) {
      cuts[num_cuts++] =
          start + work_span / 2 + rng_.NextInt(-Hours(1), Hours(1));
    }
    if (rng_.NextBool(0.35)) {
      cuts[num_cuts++] =
          start + work_span / 4 + rng_.NextInt(-Minutes(30), Minutes(30));
    }
    std::sort(cuts, cuts + num_cuts);
    EpochSeconds cursor = start;
    for (size_t i = 0; i < num_cuts; ++i) {
      EpochSeconds cut = cuts[i];
      if (cut <= cursor + Minutes(30) || cut >= end - Minutes(30)) continue;
      buf_.push_back({cursor, cut});
      cursor = cut + rng_.NextInt(Minutes(10), Minutes(90));
    }
    if (cursor < end) buf_.push_back({cursor, end});
  }

 private:
  Rng rng_;
  DurationSeconds base_;
  DurationSeconds spread_;
};

/// Daily usage, seven days a week (patterns.cc Daily).
class DailyGen final : public DayBatchGen {
 public:
  DailyGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : DayBatchGen(from, to), rng_(rng) {
    base_ = rng_.NextInt(0, Hours(14));
    spread_ = rng_.NextBool(0.5) ? Minutes(30) + rng_.NextInt(0, Minutes(90))
                                 : Hours(8) + rng_.NextInt(0, Hours(4));
  }

 protected:
  void GenerateDay(EpochSeconds day) override {
    if (rng_.NextBool(0.08)) return;
    EpochSeconds start = day + base_ + rng_.NextInt(0, spread_);
    DurationSeconds window_len = Hours(1) + rng_.NextInt(0, Hours(5));
    EpochSeconds end = start + window_len;
    if (rng_.NextBool(0.5)) {
      EpochSeconds cut = start + window_len / 2;
      buf_.push_back({start, cut});
      buf_.push_back({cut + rng_.NextInt(Minutes(5), Minutes(45)), end});
    } else {
      buf_.push_back({start, end});
    }
  }

 private:
  Rng rng_;
  DurationSeconds base_;
  DurationSeconds spread_;
};

/// One or two fixed weekdays (patterns.cc Weekly).
class WeeklyGen final : public DayBatchGen {
 public:
  WeeklyGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : DayBatchGen(from, to), rng_(rng) {
    day_a_ = static_cast<int>(rng_.NextInt(0, 6));
    day_b_ = rng_.NextBool(0.4) ? static_cast<int>(rng_.NextInt(0, 6)) : -1;
    hour_ = Hours(6) + rng_.NextInt(0, Hours(8));
  }

 protected:
  void GenerateDay(EpochSeconds day) override {
    int wd = WeekdayIndex(day);
    if (wd != day_a_ && wd != day_b_) return;
    if (rng_.NextBool(0.08)) return;
    EpochSeconds start = day + hour_ + rng_.NextInt(0, Hours(4));
    buf_.push_back({start, start + rng_.NextInt(Hours(1), Hours(5))});
  }

 private:
  Rng rng_;
  int day_a_;
  int day_b_;
  DurationSeconds hour_;
};

/// Rare days packed with dozens of short sessions (patterns.cc Bursty).
class BurstyGen final : public DayBatchGen {
 public:
  BurstyGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : DayBatchGen(from, to), rng_(rng) {}

 protected:
  void GenerateDay(EpochSeconds day) override {
    if (!rng_.NextBool(0.45)) return;
    EpochSeconds cursor = day + rng_.NextInt(0, Hours(6));
    int sessions = static_cast<int>(rng_.NextInt(40, 130));
    for (int i = 0; i < sessions && cursor < day + Days(1); ++i) {
      DurationSeconds session = rng_.NextInt(Minutes(2), Minutes(10));
      buf_.push_back({cursor, cursor + session});
      cursor += session + rng_.NextInt(Minutes(2), Minutes(12));
    }
  }

 private:
  Rng rng_;
};

/// Occasional short workday sessions (patterns.cc DevTest).
class DevTestGen final : public DayBatchGen {
 public:
  DevTestGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : DayBatchGen(from, to), rng_(rng) {}

 protected:
  void GenerateDay(EpochSeconds day) override {
    if (IsWeekend(day) || !rng_.NextBool(0.35)) return;
    int sessions = static_cast<int>(rng_.NextInt(1, 3));
    EpochSeconds cursor = day + Hours(8) + rng_.NextInt(0, Hours(6));
    for (int i = 0; i < sessions; ++i) {
      DurationSeconds session = rng_.NextInt(Minutes(15), Minutes(90));
      buf_.push_back({cursor, cursor + session});
      cursor += session + rng_.NextInt(Minutes(30), Hours(3));
    }
  }

 private:
  Rng rng_;
};

/// Near-continuous usage (patterns.cc AlwaysBusy): a single running
/// timestamp, one session per pull.
class AlwaysBusyGen final : public RawGen {
 public:
  AlwaysBusyGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : to_(to), rng_(rng) {
    cursor_ = from + rng_.NextInt(0, Hours(2));
  }

  bool Next(Session* out) override {
    if (cursor_ >= to_) return false;
    DurationSeconds session =
        static_cast<DurationSeconds>(rng_.NextExponential(Hours(3)));
    session = std::clamp(session, Minutes(10), Hours(12));
    *out = {cursor_, cursor_ + session};
    DurationSeconds gap =
        static_cast<DurationSeconds>(rng_.NextExponential(Minutes(25)));
    gap = std::clamp(gap, Minutes(2), Hours(4));
    cursor_ += session + gap;
    return true;
  }

 private:
  EpochSeconds cursor_;
  EpochSeconds to_;
  Rng rng_;
};

/// Poisson sessions days apart (patterns.cc Sporadic).
class SporadicGen final : public RawGen {
 public:
  SporadicGen(EpochSeconds from, EpochSeconds to, Rng rng)
      : to_(to), rng_(rng) {
    cursor_ = from + rng_.NextInt(0, Days(3));
  }

  bool Next(Session* out) override {
    if (cursor_ >= to_) return false;
    DurationSeconds session =
        static_cast<DurationSeconds>(rng_.NextExponential(Hours(1)));
    session = std::clamp(session, Minutes(5), Hours(8));
    *out = {cursor_, cursor_ + session};
    DurationSeconds gap =
        static_cast<DurationSeconds>(rng_.NextExponential(Days(5)));
    gap = std::clamp(gap, Hours(8), Days(24));
    cursor_ += session + gap;
    return true;
  }

 private:
  EpochSeconds cursor_;
  EpochSeconds to_;
  Rng rng_;
};

std::unique_ptr<RawGen> MakeRawGen(PatternType pattern, EpochSeconds from,
                                   EpochSeconds to, Rng rng) {
  switch (pattern) {
    case PatternType::kDailyBusiness:
      return std::make_unique<DailyBusinessGen>(from, to, rng);
    case PatternType::kDaily:
      return std::make_unique<DailyGen>(from, to, rng);
    case PatternType::kWeekly:
      return std::make_unique<WeeklyGen>(from, to, rng);
    case PatternType::kAlwaysBusy:
      return std::make_unique<AlwaysBusyGen>(from, to, rng);
    case PatternType::kSporadic:
      return std::make_unique<SporadicGen>(from, to, rng);
    case PatternType::kBursty:
      return std::make_unique<BurstyGen>(from, to, rng);
    case PatternType::kDevTest:
      return std::make_unique<DevTestGen>(from, to, rng);
  }
  return std::make_unique<SporadicGen>(from, to, rng);
}

/// Applies NormalizeSessions' clip/merge/min-gap rules one session at a
/// time.  The sort NormalizeSessions performs is a no-op here because
/// raw generators emit ascending starts (clipping preserves that).
class NormalizingCursor final : public SessionCursor {
 public:
  NormalizingCursor(std::unique_ptr<RawGen> gen, EpochSeconds from,
                    EpochSeconds to, DurationSeconds min_gap)
      : gen_(std::move(gen)), from_(from), to_(to), min_gap_(min_gap) {}

  bool Next(Session* out) override {
    for (;;) {
      Session raw;
      if (!gen_ || !gen_->Next(&raw)) {
        gen_.reset();
        if (!have_pending_) return false;
        have_pending_ = false;
        *out = pending_;
        return true;
      }
      raw.start = std::max(raw.start, from_);
      raw.end = std::min(raw.end, to_);
      if (raw.end - raw.start < 1) continue;
      if (!have_pending_) {
        pending_ = raw;
        have_pending_ = true;
        continue;
      }
      if (raw.start - pending_.end < min_gap_) {
        pending_.end = std::max(pending_.end, raw.end);
        continue;
      }
      *out = pending_;
      pending_ = raw;
      return true;
    }
  }

 private:
  std::unique_ptr<RawGen> gen_;
  EpochSeconds from_;
  EpochSeconds to_;
  DurationSeconds min_gap_;
  Session pending_;
  bool have_pending_ = false;
};

class VectorCursor final : public SessionCursor {
 public:
  explicit VectorCursor(const std::vector<Session>* sessions)
      : sessions_(sessions) {}

  bool Next(Session* out) override {
    if (idx_ >= sessions_->size()) return false;
    *out = (*sessions_)[idx_++];
    return true;
  }

 private:
  const std::vector<Session>* sessions_;
  size_t idx_ = 0;
};

}  // namespace

std::unique_ptr<SessionCursor> MaterializedTraceSource::Open(
    uint32_t db_id) const {
  return std::make_unique<VectorCursor>(&(*traces_)[db_id].sessions);
}

StreamingFleetSource::StreamingFleetSource(RegionProfile profile,
                                           size_t num_dbs, EpochSeconds from,
                                           EpochSeconds to, uint64_t seed,
                                           EpochSeconds new_from)
    : profile_(std::move(profile)),
      num_dbs_(num_dbs),
      from_(from),
      to_(to),
      new_from_(new_from <= 0 ? from : new_from),
      seed_(seed) {
  for (const auto& [pattern, weight] : profile_.mix) total_weight_ += weight;
}

std::unique_ptr<SessionCursor> StreamingFleetSource::Open(
    uint32_t db_id) const {
  // Mirrors GenerateFleet's per-database draw order (archetype pick, then
  // the new-database creation time), but addresses the stream purely so
  // database k is reconstructible in O(1) from any shard.
  Rng db_rng = Rng(seed_).ForkStream(db_id);
  double pick = db_rng.NextDouble() * total_weight_;
  PatternType pattern = profile_.mix.back().first;
  for (const auto& [candidate, weight] : profile_.mix) {
    if (pick < weight) {
      pattern = candidate;
      break;
    }
    pick -= weight;
  }
  EpochSeconds start = from_;
  if (db_rng.NextBool(profile_.new_db_fraction) && new_from_ > from_) {
    start = new_from_ + db_rng.NextInt(0, to_ - new_from_ - 1);
  }
  return std::make_unique<NormalizingCursor>(
      MakeRawGen(pattern, start, to_, db_rng), start, to_,
      kSecondsPerMinute);
}

PatternType StreamingFleetSource::PatternOf(uint32_t db_id) const {
  Rng db_rng = Rng(seed_).ForkStream(db_id);
  double pick = db_rng.NextDouble() * total_weight_;
  PatternType pattern = profile_.mix.back().first;
  for (const auto& [candidate, weight] : profile_.mix) {
    if (pick < weight) return candidate;
    pick -= weight;
  }
  return pattern;
}

std::vector<Session> CollectSessions(const TraceSource& source,
                                     uint32_t db_id) {
  std::vector<Session> sessions;
  std::unique_ptr<SessionCursor> cursor = source.Open(db_id);
  Session s;
  while (cursor->Next(&s)) sessions.push_back(s);
  return sessions;
}

}  // namespace prorp::workload
