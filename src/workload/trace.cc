#include "workload/trace.h"

#include <algorithm>

namespace prorp::workload {

std::string_view PatternTypeName(PatternType type) {
  switch (type) {
    case PatternType::kDailyBusiness:
      return "daily_business";
    case PatternType::kDaily:
      return "daily";
    case PatternType::kWeekly:
      return "weekly";
    case PatternType::kAlwaysBusy:
      return "always_busy";
    case PatternType::kSporadic:
      return "sporadic";
    case PatternType::kBursty:
      return "bursty";
    case PatternType::kDevTest:
      return "dev_test";
  }
  return "unknown";
}

void NormalizeSessions(std::vector<Session>& sessions, EpochSeconds from,
                       EpochSeconds to, DurationSeconds min_gap) {
  // Clip and drop degenerate sessions.
  std::vector<Session> clipped;
  clipped.reserve(sessions.size());
  for (Session s : sessions) {
    s.start = std::max(s.start, from);
    s.end = std::min(s.end, to);
    if (s.end - s.start >= 1) clipped.push_back(s);
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const Session& a, const Session& b) {
              return a.start < b.start;
            });
  // Merge sessions that overlap or are closer than min_gap.
  std::vector<Session> merged;
  for (const Session& s : clipped) {
    if (!merged.empty() && s.start - merged.back().end < min_gap) {
      merged.back().end = std::max(merged.back().end, s.end);
    } else {
      merged.push_back(s);
    }
  }
  sessions = std::move(merged);
}

GapStats ComputeGapStats(const std::vector<DbTrace>& traces,
                         DurationSeconds short_gap, DurationSeconds l) {
  GapStats stats;
  uint64_t short_count = 0;
  uint64_t within_l_count = 0;
  double short_duration = 0;
  for (const DbTrace& trace : traces) {
    for (size_t i = 1; i < trace.sessions.size(); ++i) {
      DurationSeconds gap =
          trace.sessions[i].start - trace.sessions[i - 1].end;
      if (gap <= 0) continue;
      ++stats.gap_count;
      stats.total_gap_seconds += static_cast<double>(gap);
      stats.gap_durations.Add(static_cast<double>(gap));
      if (gap < short_gap) {
        ++short_count;
        short_duration += static_cast<double>(gap);
      }
      if (gap < l) ++within_l_count;
    }
  }
  if (stats.gap_count > 0) {
    stats.short_gap_count_fraction =
        static_cast<double>(short_count) /
        static_cast<double>(stats.gap_count);
    stats.within_l_count_fraction =
        static_cast<double>(within_l_count) /
        static_cast<double>(stats.gap_count);
  }
  if (stats.total_gap_seconds > 0) {
    stats.short_gap_duration_fraction =
        short_duration / stats.total_gap_seconds;
  }
  return stats;
}

}  // namespace prorp::workload
