#ifndef PRORP_WORKLOAD_REGION_H_
#define PRORP_WORKLOAD_REGION_H_

#include <string>
#include <vector>

#include "workload/patterns.h"
#include "workload/trace.h"

namespace prorp::workload {

/// Composition of a simulated Azure region's serverless fleet.  The four
/// profiles below stand in for the paper's EU1/EU2/US1/US2 production
/// regions: same archetypes, slightly different mixes, which is what
/// produces the spread of Figure 6.
struct RegionProfile {
  std::string name;
  /// Pattern mix; weights are normalized.
  std::vector<std::pair<PatternType, double>> mix;
  /// Per-hour hazard that a logically paused database is reclaimed early
  /// by node capacity pressure (see DESIGN.md section 3).
  double eviction_per_hour = 0.05;
  /// Fraction of databases created inside the evaluation window ("new"
  /// databases with no usable history; Section 4).
  double new_db_fraction = 0.03;
};

RegionProfile RegionEU1();
RegionProfile RegionEU2();
RegionProfile RegionUS1();
RegionProfile RegionUS2();
std::vector<RegionProfile> AllRegions();

/// Generates a fleet of `num_dbs` traces over [from, to).  Databases drawn
/// as "new" are created at a random time inside [new_from, to) instead of
/// at the window start (new_from defaults to `from` when <= 0 is passed).
/// Deterministic in `seed`.
std::vector<DbTrace> GenerateFleet(const RegionProfile& profile,
                                   size_t num_dbs, EpochSeconds from,
                                   EpochSeconds to, uint64_t seed,
                                   EpochSeconds new_from = 0);

}  // namespace prorp::workload

#endif  // PRORP_WORKLOAD_REGION_H_
