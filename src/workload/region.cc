#include "workload/region.h"

namespace prorp::workload {

// Mix weights are calibrated so that (a) idle-gap fragmentation matches
// the Figure 3 shape (most idle intervals are short but contribute a tiny
// share of idle time), (b) the reactive baseline lands in the paper's
// 60-68% QoS band under each region's capacity pressure, and (c) the
// proactive policy lands in the 80-90% band.  bench_fig3_fragmentation and
// bench_fig6_regions print the calibration numbers; EXPERIMENTS.md
// discusses the inherent tension between Figure 3's 72% short-gap count
// share and Figure 6's reactive QoS band.

RegionProfile RegionEU1() {
  RegionProfile p;
  p.name = "EU1";
  p.mix = {
      {PatternType::kDailyBusiness, 0.31},
      {PatternType::kDaily, 0.13},
      {PatternType::kWeekly, 0.09},
      {PatternType::kAlwaysBusy, 0.05},
      {PatternType::kSporadic, 0.25},
      {PatternType::kBursty, 0.03},
      {PatternType::kDevTest, 0.14},
  };
  p.eviction_per_hour = 0.50;
  p.new_db_fraction = 0.03;
  return p;
}

RegionProfile RegionEU2() {
  RegionProfile p;
  p.name = "EU2";
  p.mix = {
      {PatternType::kDailyBusiness, 0.32},
      {PatternType::kDaily, 0.14},
      {PatternType::kWeekly, 0.08},
      {PatternType::kAlwaysBusy, 0.07},
      {PatternType::kSporadic, 0.23},
      {PatternType::kBursty, 0.02},
      {PatternType::kDevTest, 0.14},
  };
  p.eviction_per_hour = 0.42;
  p.new_db_fraction = 0.04;
  return p;
}

RegionProfile RegionUS1() {
  RegionProfile p;
  p.name = "US1";
  p.mix = {
      {PatternType::kDailyBusiness, 0.36},
      {PatternType::kDaily, 0.12},
      {PatternType::kWeekly, 0.06},
      {PatternType::kAlwaysBusy, 0.05},
      {PatternType::kSporadic, 0.25},
      {PatternType::kBursty, 0.04},
      {PatternType::kDevTest, 0.13},
  };
  p.eviction_per_hour = 0.57;
  p.new_db_fraction = 0.03;
  return p;
}

RegionProfile RegionUS2() {
  RegionProfile p;
  p.name = "US2";
  p.mix = {
      {PatternType::kDailyBusiness, 0.31},
      {PatternType::kDaily, 0.13},
      {PatternType::kWeekly, 0.08},
      {PatternType::kAlwaysBusy, 0.05},
      {PatternType::kSporadic, 0.26},
      {PatternType::kBursty, 0.03},
      {PatternType::kDevTest, 0.14},
  };
  p.eviction_per_hour = 0.50;
  p.new_db_fraction = 0.05;
  return p;
}

std::vector<RegionProfile> AllRegions() {
  return {RegionEU1(), RegionEU2(), RegionUS1(), RegionUS2()};
}

std::vector<DbTrace> GenerateFleet(const RegionProfile& profile,
                                   size_t num_dbs, EpochSeconds from,
                                   EpochSeconds to, uint64_t seed,
                                   EpochSeconds new_from) {
  if (new_from <= 0) new_from = from;
  Rng master(seed);
  double total_weight = 0;
  for (const auto& [pattern, weight] : profile.mix) total_weight += weight;

  std::vector<DbTrace> fleet;
  fleet.reserve(num_dbs);
  for (size_t i = 0; i < num_dbs; ++i) {
    Rng db_rng = master.Fork();
    double pick = db_rng.NextDouble() * total_weight;
    PatternType pattern = profile.mix.back().first;
    for (const auto& [candidate, weight] : profile.mix) {
      if (pick < weight) {
        pattern = candidate;
        break;
      }
      pick -= weight;
    }
    EpochSeconds start = from;
    if (db_rng.NextBool(profile.new_db_fraction) && new_from > from) {
      start = new_from + db_rng.NextInt(0, to - new_from - 1);
    }
    fleet.push_back(GenerateTrace(pattern, static_cast<uint32_t>(i), start,
                                  to, db_rng));
  }
  return fleet;
}

}  // namespace prorp::workload
