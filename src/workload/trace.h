#ifndef PRORP_WORKLOAD_TRACE_H_
#define PRORP_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/time_util.h"

namespace prorp::workload {

/// One interval of customer activity: demand D(d, t) = 1 for
/// t in [start, end).
struct Session {
  EpochSeconds start = 0;
  EpochSeconds end = 0;

  DurationSeconds duration() const { return end - start; }
  friend bool operator==(const Session&, const Session&) = default;
};

/// Customer usage archetypes observed in the fleet (Section 1, Challenge 1:
/// "databases with stable usage, databases that follow a weekly or a daily
/// pattern, and databases that have short unpredictable spikes").
enum class PatternType : uint8_t {
  kDailyBusiness,  // weekday business hours with intraday breaks
  kDaily,          // a fixed daily window, 7 days a week
  kWeekly,         // one or two fixed weekdays
  kAlwaysBusy,     // near-continuous usage with short gaps
  kSporadic,       // Poisson sessions, days apart; unpredictable
  kBursty,         // rare days with dozens of short sessions
  kDevTest,        // occasional short workday sessions
};

std::string_view PatternTypeName(PatternType type);

/// The activity trace of one simulated database.
struct DbTrace {
  uint32_t db_id = 0;
  PatternType pattern = PatternType::kSporadic;
  /// Creation time of the database (its first login).
  EpochSeconds created_at = 0;
  /// Non-overlapping sessions, ascending, all within the generation
  /// window, first session starting at created_at.
  std::vector<Session> sessions;
};

/// Sorts, clips to [from, to), merges overlaps, and enforces a minimum
/// inter-session gap (logins one second apart would collide in the
/// history's unique-timestamp column).
void NormalizeSessions(std::vector<Session>& sessions, EpochSeconds from,
                       EpochSeconds to,
                       DurationSeconds min_gap = kSecondsPerMinute);

/// Idle-gap fragmentation statistics (Figure 3): the distribution of idle
/// intervals between consecutive sessions, by count and by total duration.
struct GapStats {
  uint64_t gap_count = 0;
  double total_gap_seconds = 0;
  /// Fraction of idle intervals shorter than one hour (paper: ~72%).
  double short_gap_count_fraction = 0;
  /// Their share of the total idle duration (paper: ~5%).
  double short_gap_duration_fraction = 0;
  /// Fraction of idle intervals within the logical pause duration l = 7 h
  /// (bounds the reactive policy's best-case QoS).
  double within_l_count_fraction = 0;
  Summary gap_durations;  // seconds; for CDF printing
};

GapStats ComputeGapStats(const std::vector<DbTrace>& traces,
                         DurationSeconds short_gap = Hours(1),
                         DurationSeconds l = Hours(7));

}  // namespace prorp::workload

#endif  // PRORP_WORKLOAD_TRACE_H_
