#include "workload/patterns.h"

#include <algorithm>
#include <cmath>

namespace prorp::workload {
namespace {

// Clamps a gaussian draw into [lo, hi].
DurationSeconds GaussianClamped(Rng& rng, double mean, double stddev,
                                DurationSeconds lo, DurationSeconds hi) {
  double v = rng.NextGaussian(mean, stddev);
  return std::clamp(static_cast<DurationSeconds>(v), lo, hi);
}

/// Weekday business usage with LOOSE within-day timing: the first login
/// of a day lands anywhere inside a per-database window of several hours
/// (different teams, time zones, automation schedules), which is what
/// makes the prediction window size matter (Figure 8): narrow windows
/// catch too few historical logins to clear the confidence threshold.
/// Intraday breaks create the short idle gaps of Figure 3(a).
void DailyBusiness(std::vector<Session>& out, EpochSeconds from,
                   EpochSeconds to, Rng& rng) {
  DurationSeconds base = Hours(5) + rng.NextInt(0, Hours(4));  // 5:00-9:00
  // Half the population keeps a tight habitual login hour (predictable at
  // any window size); the other half logs in anywhere within a wide span
  // (predictable only once the window is wide enough) — the blend that
  // produces Figure 8's window-size sensitivity.
  DurationSeconds spread = rng.NextBool(0.5)
                               ? Minutes(40) + rng.NextInt(0, Minutes(80))
                               : Hours(9) + rng.NextInt(0, Hours(4));
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    if (IsWeekend(day)) {
      if (rng.NextBool(0.05)) {  // rare weekend check-in
        EpochSeconds s = day + Hours(10) + rng.NextInt(0, Hours(6));
        out.push_back({s, s + rng.NextInt(Minutes(10), Hours(1))});
      }
      continue;
    }
    if (rng.NextBool(0.12)) continue;  // day off
    EpochSeconds start = day + base + rng.NextInt(0, spread);
    DurationSeconds work_span = Hours(3) + rng.NextInt(0, Hours(5));
    EpochSeconds end = start + work_span;
    // Intraday breaks split the day into 1-3 sessions.
    std::vector<EpochSeconds> cuts;
    if (rng.NextBool(0.75)) cuts.push_back(start + work_span / 2 +
                                           rng.NextInt(-Hours(1), Hours(1)));
    if (rng.NextBool(0.35)) cuts.push_back(start + work_span / 4 +
                                           rng.NextInt(-Minutes(30),
                                                       Minutes(30)));
    std::sort(cuts.begin(), cuts.end());
    EpochSeconds cursor = start;
    for (EpochSeconds cut : cuts) {
      if (cut <= cursor + Minutes(30) || cut >= end - Minutes(30)) continue;
      out.push_back({cursor, cut});
      cursor = cut + rng.NextInt(Minutes(10), Minutes(90));  // the break
    }
    if (cursor < end) out.push_back({cursor, end});
  }
}

/// Daily usage, seven days a week, with the same loose within-day timing
/// (e.g. a dashboard refreshed "sometime during the day").
void Daily(std::vector<Session>& out, EpochSeconds from, EpochSeconds to,
           Rng& rng) {
  DurationSeconds base = rng.NextInt(0, Hours(14));
  DurationSeconds spread = rng.NextBool(0.5)
                               ? Minutes(30) + rng.NextInt(0, Minutes(90))
                               : Hours(8) + rng.NextInt(0, Hours(4));
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    if (rng.NextBool(0.08)) continue;
    EpochSeconds start = day + base + rng.NextInt(0, spread);
    DurationSeconds window_len = Hours(1) + rng.NextInt(0, Hours(5));
    EpochSeconds end = start + window_len;
    if (rng.NextBool(0.5)) {
      EpochSeconds cut = start + window_len / 2;
      out.push_back({start, cut});
      out.push_back({cut + rng.NextInt(Minutes(5), Minutes(45)), end});
    } else {
      out.push_back({start, end});
    }
  }
}

/// One or two fixed weekdays (weekly reporting jobs).
void Weekly(std::vector<Session>& out, EpochSeconds from, EpochSeconds to,
            Rng& rng) {
  int day_a = static_cast<int>(rng.NextInt(0, 6));
  int day_b = rng.NextBool(0.4) ? static_cast<int>(rng.NextInt(0, 6)) : -1;
  DurationSeconds hour = Hours(6) + rng.NextInt(0, Hours(8));
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    int wd = WeekdayIndex(day);
    if (wd != day_a && wd != day_b) continue;
    if (rng.NextBool(0.08)) continue;
    EpochSeconds start = day + hour + rng.NextInt(0, Hours(4));
    out.push_back({start, start + rng.NextInt(Hours(1), Hours(5))});
  }
}

/// Near-continuous usage: long sessions separated by short gaps.  The
/// dominant source of sub-hour idle intervals.
void AlwaysBusy(std::vector<Session>& out, EpochSeconds from,
                EpochSeconds to, Rng& rng) {
  EpochSeconds cursor = from + rng.NextInt(0, Hours(2));
  while (cursor < to) {
    DurationSeconds session =
        static_cast<DurationSeconds>(rng.NextExponential(Hours(3)));
    session = std::clamp(session, Minutes(10), Hours(12));
    out.push_back({cursor, cursor + session});
    DurationSeconds gap =
        static_cast<DurationSeconds>(rng.NextExponential(Minutes(25)));
    gap = std::clamp(gap, Minutes(2), Hours(4));
    cursor += session + gap;
  }
}

/// Poisson sessions days apart: the unpredictable tail of the fleet.
void Sporadic(std::vector<Session>& out, EpochSeconds from, EpochSeconds to,
              Rng& rng) {
  EpochSeconds cursor = from + rng.NextInt(0, Days(3));
  while (cursor < to) {
    DurationSeconds session =
        static_cast<DurationSeconds>(rng.NextExponential(Hours(1)));
    session = std::clamp(session, Minutes(5), Hours(8));
    out.push_back({cursor, cursor + session});
    DurationSeconds gap =
        static_cast<DurationSeconds>(rng.NextExponential(Days(5)));
    gap = std::clamp(gap, Hours(8), Days(24));
    cursor += session + gap;
  }
}

/// Rare days packed with dozens of short sessions (automated test suites,
/// agent retries).  Produces the worst-case history sizes of Figure 10(a).
void Bursty(std::vector<Session>& out, EpochSeconds from, EpochSeconds to,
            Rng& rng) {
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    if (!rng.NextBool(0.45)) continue;
    EpochSeconds cursor = day + rng.NextInt(0, Hours(6));
    int sessions = static_cast<int>(rng.NextInt(40, 130));
    for (int i = 0; i < sessions && cursor < day + Days(1); ++i) {
      DurationSeconds session = rng.NextInt(Minutes(2), Minutes(10));
      out.push_back({cursor, cursor + session});
      cursor += session + rng.NextInt(Minutes(2), Minutes(12));
    }
  }
}

/// Occasional short sessions on workdays.
void DevTest(std::vector<Session>& out, EpochSeconds from, EpochSeconds to,
             Rng& rng) {
  for (EpochSeconds day = StartOfDay(from); day < to; day += Days(1)) {
    if (IsWeekend(day) || !rng.NextBool(0.35)) continue;
    int sessions = static_cast<int>(rng.NextInt(1, 3));
    EpochSeconds cursor = day + Hours(8) + rng.NextInt(0, Hours(6));
    for (int i = 0; i < sessions; ++i) {
      DurationSeconds session = rng.NextInt(Minutes(15), Minutes(90));
      out.push_back({cursor, cursor + session});
      cursor += session + rng.NextInt(Minutes(30), Hours(3));
    }
  }
}

}  // namespace

DbTrace GenerateTrace(PatternType pattern, uint32_t db_id, EpochSeconds from,
                      EpochSeconds to, Rng& rng) {
  DbTrace trace;
  trace.db_id = db_id;
  trace.pattern = pattern;
  switch (pattern) {
    case PatternType::kDailyBusiness:
      DailyBusiness(trace.sessions, from, to, rng);
      break;
    case PatternType::kDaily:
      Daily(trace.sessions, from, to, rng);
      break;
    case PatternType::kWeekly:
      Weekly(trace.sessions, from, to, rng);
      break;
    case PatternType::kAlwaysBusy:
      AlwaysBusy(trace.sessions, from, to, rng);
      break;
    case PatternType::kSporadic:
      Sporadic(trace.sessions, from, to, rng);
      break;
    case PatternType::kBursty:
      Bursty(trace.sessions, from, to, rng);
      break;
    case PatternType::kDevTest:
      DevTest(trace.sessions, from, to, rng);
      break;
  }
  NormalizeSessions(trace.sessions, from, to);
  if (!trace.sessions.empty()) {
    trace.created_at = trace.sessions.front().start;
  } else {
    trace.created_at = from;
  }
  return trace;
}

}  // namespace prorp::workload
