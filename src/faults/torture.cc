#include "faults/torture.h"

#include <cstring>
#include <set>
#include <vector>

#include "common/random.h"
#include "faults/crash_points.h"
#include "history/sql_history_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/durable_tree.h"
#include "storage/page.h"
#include "storage/scrubber.h"

namespace prorp::faults {
namespace {

using storage::DurableTree;

// ---------------------------------------------------------------------------
// Raw DurableTree workload
// ---------------------------------------------------------------------------

struct Op {
  enum Kind { kInsert, kUpdate, kDelete, kDeleteRange } kind = kInsert;
  int64_t key = 0;
  int64_t key2 = 0;  // hi for kDeleteRange
  std::vector<uint8_t> value;
};

using TreeModel = std::map<int64_t, std::vector<uint8_t>>;

std::vector<uint8_t> MakeValue(uint64_t op_index, int64_t key) {
  uint64_t v = op_index * 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(key);
  std::vector<uint8_t> out(8);
  std::memcpy(out.data(), &v, 8);
  return out;
}

/// The recorded workload: a deterministic function of the seed alone, so
/// the counting pass and every torture pass replay the same op stream.
std::vector<Op> GenerateOps(const TortureOptions& options) {
  Rng rng(options.seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  std::vector<Op> ops;
  ops.reserve(options.num_ops);
  std::set<int64_t> live;
  const int64_t key_space =
      static_cast<int64_t>(options.num_ops) * 8 + 16;
  for (uint64_t i = 0; i < options.num_ops; ++i) {
    double roll = rng.NextDouble();
    Op op;
    if (!live.empty() && roll < options.delete_fraction) {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      if (rng.NextBool(0.25)) {
        op.kind = Op::kDeleteRange;
        op.key = *it;
        op.key2 = op.key + static_cast<int64_t>(rng.NextBelow(64));
        live.erase(live.lower_bound(op.key), live.upper_bound(op.key2));
      } else {
        op.kind = Op::kDelete;
        op.key = *it;
        live.erase(it);
      }
    } else if (!live.empty() &&
               roll < options.delete_fraction + options.update_fraction) {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      op.kind = Op::kUpdate;
      op.key = *it;
      op.value = MakeValue(i, op.key);
    } else {
      op.kind = Op::kInsert;
      int64_t key = rng.NextInt(0, key_space);
      while (live.count(key)) key = rng.NextInt(0, key_space);
      op.key = key;
      op.value = MakeValue(i, key);
      live.insert(key);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

Status ApplyOp(DurableTree* tree, const Op& op) {
  switch (op.kind) {
    case Op::kInsert:
      return tree->Insert(op.key, op.value.data());
    case Op::kUpdate:
      return tree->Update(op.key, op.value.data());
    case Op::kDelete:
      return tree->Delete(op.key);
    case Op::kDeleteRange:
      return tree->DeleteRange(op.key, op.key2).status();
  }
  return Status::InvalidArgument("unknown op kind");
}

void ApplyModel(TreeModel* model, const Op& op) {
  switch (op.kind) {
    case Op::kInsert:
    case Op::kUpdate:
      (*model)[op.key] = op.value;
      break;
    case Op::kDelete:
      model->erase(op.key);
      break;
    case Op::kDeleteRange:
      model->erase(model->lower_bound(op.key),
                   model->upper_bound(op.key2));
      break;
  }
}

DurableTree::Options TreeOptionsFor(const TortureOptions& options,
                                    const std::string& dir) {
  DurableTree::Options topt;
  topt.dir = dir;
  topt.value_width = 8;
  topt.fsync_each_append = options.fsync_each_append;
  topt.checkpoint_wal_bytes = options.checkpoint_wal_bytes;
  return topt;
}

/// Replays `ops`, tracking the reference model of acknowledged operations
/// and (on crash) the candidate model including the in-flight op.
/// Returns an error only on an unexpected (non-Aborted) failure.
Status ReplayTreeWorkload(DurableTree* tree, const std::vector<Op>& ops,
                          TreeModel* acked, TreeModel* inflight,
                          TortureResult* result) {
  for (uint64_t i = 0; i < ops.size(); ++i) {
    TreeModel post = *acked;
    ApplyModel(&post, ops[i]);
    Status s = ApplyOp(tree, ops[i]);
    if (s.ok()) {
      *acked = std::move(post);
      ++result->acked_ops;
      continue;
    }
    if (s.code() == StatusCode::kAborted) {
      result->crashed = true;
      *inflight = std::move(post);
      return Status::OK();
    }
    return Status::Internal("torture workload op " + std::to_string(i) +
                            " failed unexpectedly: " + s.ToString());
  }
  return Status::OK();
}

Result<TreeModel> CollectTree(const DurableTree& tree) {
  TreeModel got;
  PRORP_RETURN_IF_ERROR(tree.ScanRange(
      INT64_MIN, INT64_MAX, [&](int64_t key, const uint8_t* value) {
        got[key] = std::vector<uint8_t>(value, value + 8);
        return true;
      }));
  return got;
}

// ---------------------------------------------------------------------------
// SQL history-store workload
// ---------------------------------------------------------------------------

struct SqlOp {
  enum Kind { kInsert, kRetention } kind = kInsert;
  int64_t time = 0;    // kInsert
  int event_type = 0;  // kInsert
  int64_t now = 0;     // kRetention
  int64_t h = 0;       // kRetention window, seconds
};

using SqlModel = std::map<int64_t, int>;  // time_snapshot -> event_type

std::vector<SqlOp> GenerateSqlOps(const TortureOptions& options) {
  Rng rng(options.seed * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL);
  std::vector<SqlOp> ops;
  ops.reserve(options.num_ops);
  int64_t now = 1'000'000;
  for (uint64_t i = 0; i < options.num_ops; ++i) {
    now += rng.NextInt(1, 120);
    SqlOp op;
    if (i > 0 && i % 97 == 0) {
      op.kind = SqlOp::kRetention;
      op.now = now;
      // Retain roughly the most recent two thirds of the stream so each
      // sweep has something to delete (a real DeleteRange through SQL).
      op.h = (now - 1'000'000) * 2 / 3 + 1;
    } else {
      op.kind = SqlOp::kInsert;
      op.time = now;
      op.event_type = rng.NextBool(0.5) ? 1 : 0;
    }
    ops.push_back(op);
  }
  return ops;
}

Status ApplySqlOp(history::SqlHistoryStore* store, const SqlOp& op) {
  if (op.kind == SqlOp::kInsert) {
    return store->InsertHistory(op.time, op.event_type);
  }
  return store->DeleteOldHistory(op.h, op.now).status();
}

/// Mirrors SqlHistoryStore semantics: IF NOT EXISTS insert; retention
/// keeps the oldest tuple and deletes everything strictly between it and
/// the start of recent history.
void ApplySqlModel(SqlModel* model, const SqlOp& op) {
  if (op.kind == SqlOp::kInsert) {
    model->emplace(op.time, op.event_type);
    return;
  }
  if (model->empty()) return;
  int64_t min_ts = model->begin()->first;
  int64_t history_start = op.now - op.h;
  if (min_ts >= history_start) return;
  model->erase(model->upper_bound(min_ts),
               model->lower_bound(history_start));
}

Status ReplaySqlWorkload(history::SqlHistoryStore* store,
                         const std::vector<SqlOp>& ops, SqlModel* acked,
                         SqlModel* inflight, TortureResult* result) {
  for (uint64_t i = 0; i < ops.size(); ++i) {
    SqlModel post = *acked;
    ApplySqlModel(&post, ops[i]);
    Status s = ApplySqlOp(store, ops[i]);
    if (s.ok()) {
      *acked = std::move(post);
      ++result->acked_ops;
      continue;
    }
    if (s.code() == StatusCode::kAborted) {
      result->crashed = true;
      *inflight = std::move(post);
      return Status::OK();
    }
    return Status::Internal("torture SQL op " + std::to_string(i) +
                            " failed unexpectedly: " + s.ToString());
  }
  return Status::OK();
}

Result<SqlModel> CollectSql(const history::SqlHistoryStore& store) {
  PRORP_ASSIGN_OR_RETURN(std::vector<history::HistoryTuple> tuples,
                         store.ReadAll());
  SqlModel got;
  for (const history::HistoryTuple& t : tuples) {
    got[t.time_snapshot] = t.event_type;
  }
  return got;
}

template <typename Model>
Status VerifyRecovered(const Model& got, const Model& acked,
                       const Model& inflight, const TortureResult& result,
                       std::string_view what) {
  if (got == acked) return Status::OK();
  if (result.crashed && got == inflight) return Status::OK();
  return Status::Corruption(
      std::string(what) + " recovery mismatch at crash point '" +
      result.crash_point + "': recovered " + std::to_string(got.size()) +
      " entries, expected " + std::to_string(acked.size()) +
      " (acked) or " + std::to_string(inflight.size()) + " (in-flight)");
}

}  // namespace

Result<std::map<std::string, uint64_t>> ObserveCrashPoints(
    const TortureOptions& options, const std::string& dir) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  reg.SetCounting(true);
  Status run = [&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(auto tree,
                           DurableTree::Open(TreeOptionsFor(options, dir)));
    TreeModel acked, inflight;
    TortureResult scratch;
    return ReplayTreeWorkload(tree.get(), GenerateOps(options), &acked,
                              &inflight, &scratch);
  }();
  std::map<std::string, uint64_t> hits;
  for (std::string_view point : AllCrashPoints()) {
    hits[std::string(point)] = reg.hits(point);
  }
  reg.Reset();
  PRORP_RETURN_IF_ERROR(run);
  return hits;
}

Result<std::map<std::string, uint64_t>> ObserveSqlCrashPoints(
    const TortureOptions& options, const std::string& dir) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  reg.SetCounting(true);
  storage::DurableTree::Options tuning = TreeOptionsFor(options, "");
  Status run = [&]() -> Status {
    PRORP_ASSIGN_OR_RETURN(auto store,
                           history::SqlHistoryStore::Open(dir, &tuning));
    SqlModel acked, inflight;
    TortureResult scratch;
    return ReplaySqlWorkload(store.get(), GenerateSqlOps(options), &acked,
                             &inflight, &scratch);
  }();
  std::map<std::string, uint64_t> hits;
  for (std::string_view point : AllCrashPoints()) {
    hits[std::string(point)] = reg.hits(point);
  }
  reg.Reset();
  PRORP_RETURN_IF_ERROR(run);
  return hits;
}

Result<TortureResult> RunCrashTorture(const TortureOptions& options,
                                      const std::string& dir,
                                      std::string_view point, uint64_t nth) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  Rng payload_rng(options.seed ^ 0x2545f4914f6cdd1dULL);
  reg.Arm(point, nth, payload_rng.NextU64());

  TortureResult result;
  result.crash_point = std::string(point);
  TreeModel acked, inflight;
  {
    auto tree_or = DurableTree::Open(TreeOptionsFor(options, dir));
    if (!tree_or.ok()) {
      reg.Reset();
      return tree_or.status();
    }
    Status run = ReplayTreeWorkload(tree_or->get(), GenerateOps(options),
                                    &acked, &inflight, &result);
    if (!run.ok()) {
      reg.Reset();
      return run;
    }
    // Simulated process death: the tree is dropped with no shutdown work.
  }
  reg.Reset();

  PRORP_ASSIGN_OR_RETURN(auto recovered,
                         DurableTree::Open(TreeOptionsFor(options, dir)));
  PRORP_RETURN_IF_ERROR(recovered->tree().CheckInvariants());
  PRORP_ASSIGN_OR_RETURN(TreeModel got, CollectTree(*recovered));
  PRORP_RETURN_IF_ERROR(
      VerifyRecovered(got, acked, inflight, result, "tree"));
  result.recovered_entries = got.size();
  return result;
}

Result<TortureResult> RunSqlCrashTorture(const TortureOptions& options,
                                         const std::string& dir,
                                         std::string_view point,
                                         uint64_t nth) {
  CrashPointRegistry& reg = CrashPointRegistry::Global();
  reg.Reset();
  Rng payload_rng(options.seed ^ 0x2545f4914f6cdd1dULL);
  reg.Arm(point, nth, payload_rng.NextU64());

  TortureResult result;
  result.crash_point = std::string(point);
  storage::DurableTree::Options tuning = TreeOptionsFor(options, "");
  SqlModel acked, inflight;
  {
    auto store_or = history::SqlHistoryStore::Open(dir, &tuning);
    if (!store_or.ok()) {
      reg.Reset();
      return store_or.status();
    }
    Status run = ReplaySqlWorkload(store_or->get(), GenerateSqlOps(options),
                                   &acked, &inflight, &result);
    if (!run.ok()) {
      reg.Reset();
      return run;
    }
  }
  reg.Reset();

  PRORP_ASSIGN_OR_RETURN(auto recovered,
                         history::SqlHistoryStore::Open(dir, &tuning));
  PRORP_ASSIGN_OR_RETURN(
      sql::Table * table,
      recovered->database()->GetTable("sys.pause_resume_history"));
  PRORP_RETURN_IF_ERROR(table->durable_tree()->tree().CheckInvariants());
  PRORP_ASSIGN_OR_RETURN(SqlModel got, CollectSql(*recovered));
  PRORP_RETURN_IF_ERROR(
      VerifyRecovered(got, acked, inflight, result, "sql-history"));
  result.recovered_entries = got.size();
  return result;
}

Result<BitFlipSweepResult> RunBitFlipSweep(
    const BitFlipSweepOptions& options) {
  using storage::kPageHeaderSize;
  using storage::kPageSize;

  storage::InMemoryDiskManager disk;
  BitFlipSweepResult result;
  {
    storage::BufferPool pool(&disk, 128);
    PRORP_ASSIGN_OR_RETURN(auto tree, storage::BPlusTree::Create(&pool, 8));
    for (uint64_t i = 0; i < options.num_entries; ++i) {
      int64_t key = static_cast<int64_t>(i);
      std::vector<uint8_t> value = MakeValue(i, key);
      PRORP_RETURN_IF_ERROR(tree->Insert(key, value.data()));
    }
    PRORP_RETURN_IF_ERROR(pool.FlushAll());
    // The pool and tree go away here; the sealed image lives in `disk`.
  }

  uint8_t orig[kPageSize];
  uint8_t flipped[kPageSize];
  for (storage::PageId p = 0; p < disk.num_pages(); ++p) {
    ++result.pages;
    PRORP_RETURN_IF_ERROR(disk.Read(p, orig));
    std::vector<uint64_t> bits;
    for (uint64_t b = 0; b < kPageHeaderSize * 8; ++b) bits.push_back(b);
    Rng rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
    for (uint64_t i = 0; i < options.payload_bits_per_page; ++i) {
      bits.push_back(kPageHeaderSize * 8 +
                     rng.NextBelow((kPageSize - kPageHeaderSize) * 8));
    }
    for (uint64_t bit : bits) {
      std::memcpy(flipped, orig, kPageSize);
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      PRORP_RETURN_IF_ERROR(disk.Write(p, flipped));
      ++result.flips;
      PRORP_ASSIGN_OR_RETURN(storage::ScrubReport report,
                             storage::ScrubPages(&disk));
      bool exact = report.errors() == 1 && report.issues.size() == 1 &&
                   report.issues[0].page_id == p;
      bool fetch_failed;
      {
        storage::BufferPool probe(&disk, 4);
        fetch_failed = !probe.Fetch(p).ok();
      }
      if (exact && fetch_failed) {
        ++result.detected;
      } else if (report.errors() > 0) {
        ++result.mislocated;
      }
      PRORP_RETURN_IF_ERROR(disk.Write(p, orig));
    }
    PRORP_ASSIGN_OR_RETURN(storage::ScrubReport clean_report,
                           storage::ScrubPages(&disk));
    result.false_positives += clean_report.errors();
  }
  return result;
}

namespace {

DurableTree::Options CampaignTreeOptions(
    const BitFlipCampaignOptions& options, const std::string& dir,
    FaultPlan* plan) {
  DurableTree::Options topt;
  topt.dir = dir;
  topt.value_width = 8;
  topt.checkpoint_wal_bytes = options.checkpoint_wal_bytes;
  topt.buffer_pool_pages = options.buffer_pool_pages;
  topt.fault_plan = plan;
  return topt;
}

TortureOptions CampaignWorkloadOptions(const BitFlipCampaignOptions& options) {
  TortureOptions w;
  w.seed = options.seed;
  w.num_ops = options.num_ops;
  w.delete_fraction = options.delete_fraction;
  w.update_fraction = options.update_fraction;
  w.checkpoint_wal_bytes = options.checkpoint_wal_bytes;
  return w;
}

}  // namespace

Result<BitFlipCampaignResult> RunBitFlipCampaign(
    const BitFlipCampaignOptions& options, const std::string& dir) {
  BitFlipCampaignResult result;
  const std::vector<Op> ops = GenerateOps(CampaignWorkloadOptions(options));

  // Counting pass: learn how many disk reads / writes the workload issues
  // so the scripted flips land inside the observed ranges.
  uint64_t reads = 0;
  uint64_t writes = 0;
  {
    FaultPlan plan(options.seed);
    PRORP_ASSIGN_OR_RETURN(
        auto tree, DurableTree::Open(
                       CampaignTreeOptions(options, dir + "/count", &plan)));
    TreeModel acked, inflight;
    TortureResult scratch;
    PRORP_RETURN_IF_ERROR(
        ReplayTreeWorkload(tree.get(), ops, &acked, &inflight, &scratch));
    reads = plan.ops_seen(FaultOp::kDiskRead);
    writes = plan.ops_seen(FaultOp::kDiskWrite);
  }

  struct FlipCase {
    FaultOp op;
    uint64_t nth;
    uint64_t bit;
  };
  std::vector<FlipCase> cases;
  Rng rng(options.seed ^ 0xda942042e4dd58b5ULL);
  auto add_cases = [&](FaultOp op, uint64_t total) {
    if (total == 0) return;  // the workload never exercised this op
    for (uint64_t i = 0; i < options.cases_per_op; ++i) {
      uint64_t nth = 1 + rng.NextBelow(total);
      uint64_t bit =
          (i % 2 == 0)
              ? rng.NextBelow(storage::kPageHeaderSize * 8)
              : storage::kPageHeaderSize * 8 +
                    rng.NextBelow(
                        (storage::kPageSize - storage::kPageHeaderSize) * 8);
      cases.push_back({op, nth, bit});
    }
  };
  add_cases(FaultOp::kDiskRead, reads);
  add_cases(FaultOp::kDiskWrite, writes);

  for (size_t c = 0; c < cases.size(); ++c) {
    FaultPlan plan(options.seed);
    plan.FailNthWithArg(cases[c].op, cases[c].nth, FaultKind::kBitFlip,
                        cases[c].bit);
    std::string run_dir = dir + "/case" + std::to_string(c);
    PRORP_ASSIGN_OR_RETURN(
        auto tree,
        DurableTree::Open(CampaignTreeOptions(options, run_dir, &plan)));
    TreeModel acked, inflight;
    TortureResult scratch;
    PRORP_RETURN_IF_ERROR(
        ReplayTreeWorkload(tree.get(), ops, &acked, &inflight, &scratch));
    if (scratch.crashed) {
      return Status::Internal("bit-flip case " + std::to_string(c) +
                              " aborted unexpectedly");
    }
    ++result.runs;
    result.acked_ops += scratch.acked_ops;
    result.flips_fired += plan.injected();
    // Zero acked-record loss, through whatever repairs the flip forced.
    PRORP_RETURN_IF_ERROR(tree->tree().CheckInvariants());
    PRORP_ASSIGN_OR_RETURN(TreeModel got, CollectTree(*tree));
    if (got != acked) {
      return Status::Corruption("bit-flip case " + std::to_string(c) +
                                " lost acked records");
    }
    // Catch flips still latent on the page store: the scrub must end
    // clean (repairing along the way), again without losing records.
    PRORP_ASSIGN_OR_RETURN(storage::ScrubReport report, tree->Scrub());
    if (!report.clean()) {
      return Status::Corruption("bit-flip case " + std::to_string(c) +
                                " did not scrub clean: " +
                                report.ToString());
    }
    PRORP_ASSIGN_OR_RETURN(got, CollectTree(*tree));
    if (got != acked) {
      return Status::Corruption("bit-flip case " + std::to_string(c) +
                                " lost acked records during scrub repair");
    }
    const storage::IntegrityStats& integrity = tree->integrity_stats();
    result.corruption_detected += integrity.corruption_detected;
    result.corruption_repaired += integrity.corruption_repaired;
    result.corruption_quarantined += integrity.corruption_quarantined;
  }
  return result;
}

}  // namespace prorp::faults
