#ifndef PRORP_FAULTS_FAULT_INJECTING_DISK_MANAGER_H_
#define PRORP_FAULTS_FAULT_INJECTING_DISK_MANAGER_H_

#include <memory>

#include "faults/fault_plan.h"
#include "storage/disk_manager.h"

namespace prorp::faults {

/// Decorator over any DiskManager that consults a FaultPlan before each
/// operation and injects I/O errors, torn partial-page writes, and single
/// bit flips.  The buffer pool (the only DiskManager client) cannot tell
/// it apart from a flaky disk.
///
/// Fault semantics per operation:
///  * Read    — kIoError fails the read; kBitFlip completes the read but
///              flips one deterministic bit in the returned page.
///  * Write   — kIoError fails before any byte lands; kTornWrite persists
///              only a prefix of the page (the tail keeps its previous
///              contents); kBitFlip persists the page with one bit flipped.
///  * Allocate/Release/Sync — kIoError fails the call.
class FaultInjectingDiskManager : public storage::DiskManager {
 public:
  /// `plan` must outlive this manager.  Owns the inner manager.
  FaultInjectingDiskManager(std::unique_ptr<storage::DiskManager> inner,
                            FaultPlan* plan)
      : inner_(std::move(inner)), plan_(plan) {}

  Result<storage::PageId> Allocate() override;
  Status Release(storage::PageId id) override;
  Status Read(storage::PageId id, uint8_t* buf) override;
  Status Write(storage::PageId id, const uint8_t* buf) override;
  uint32_t num_pages() const override { return inner_->num_pages(); }
  Status Sync() override;
  std::string path() const override { return inner_->path(); }

  storage::DiskManager* inner() { return inner_.get(); }

 private:
  std::unique_ptr<storage::DiskManager> inner_;
  FaultPlan* plan_;
};

}  // namespace prorp::faults

#endif  // PRORP_FAULTS_FAULT_INJECTING_DISK_MANAGER_H_
