#ifndef PRORP_FAULTS_TORTURE_H_
#define PRORP_FAULTS_TORTURE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace prorp::faults {

/// Crash-torture harness: replays a deterministic recorded workload
/// against a DurableTree (or the full SQL history-store stack), crashes
/// at an armed crash point, reopens the directory, and verifies that
///   (a) recovery succeeds,
///   (b) the recovered contents equal the reference model of every
///       acknowledged operation — plus at most the single in-flight
///       operation the crash interrupted (standard redo-log semantics:
///       an unacknowledged write may be either lost or durable, but an
///       acknowledged one must never be lost), and
///   (c) the recovered B+tree satisfies its structural invariants.
///
/// The harness is two-pass.  A counting pass (ObserveCrashPoints) runs
/// the workload once with hit counting enabled to learn which points the
/// workload reaches and how often; the torture pass then arms one
/// (point, nth-hit) pair at a time.  Both passes derive everything from
/// TortureOptions::seed, so a failure reproduces from its seed alone.
struct TortureOptions {
  uint64_t seed = 42;

  /// Operations in the recorded workload.  Leaves hold ~255 entries at
  /// value_width 8, so anything comfortably past that forces leaf splits
  /// (and thus reaches the btree_mid_split point).
  uint64_t num_ops = 600;

  /// fsync after every append — required to reach wal_pre_sync.
  bool fsync_each_append = false;

  /// Auto-checkpoint threshold in WAL bytes (0 = never).  A small value
  /// forces checkpoints during the workload, reaching snapshot_mid_copy.
  uint64_t checkpoint_wal_bytes = 0;

  /// Fraction of delete / update / delete-range operations mixed into the
  /// raw-tree workload (the SQL workload derives its own op mix).
  double delete_fraction = 0.10;
  double update_fraction = 0.10;
};

/// Outcome of one torture run.
struct TortureResult {
  std::string crash_point;
  /// Whether the armed point actually fired (false = the workload did not
  /// reach its nth hit; the run degenerates to a clean-shutdown check).
  bool crashed = false;
  /// Operations acknowledged (returned OK) before the crash.
  uint64_t acked_ops = 0;
  /// Entries in the recovered tree.
  uint64_t recovered_entries = 0;
};

/// Counting pass: runs the raw DurableTree workload in `dir` with hit
/// counting enabled and returns hits per crash point.  `dir` must be a
/// fresh (empty or nonexistent) directory.
Result<std::map<std::string, uint64_t>> ObserveCrashPoints(
    const TortureOptions& options, const std::string& dir);

/// Same counting pass over the full SQL history-store stack.
Result<std::map<std::string, uint64_t>> ObserveSqlCrashPoints(
    const TortureOptions& options, const std::string& dir);

/// Torture pass against a raw DurableTree: arms `point` to fire on its
/// `nth` hit, replays the workload until the crash, reopens, verifies.
/// Any Status error is a torture failure (lost acked op, failed recovery,
/// broken invariant).  `dir` must be fresh.
Result<TortureResult> RunCrashTorture(const TortureOptions& options,
                                      const std::string& dir,
                                      std::string_view point, uint64_t nth);

/// Torture pass against SqlHistoryStore: the workload is a stream of
/// InsertHistory calls with strictly increasing timestamps plus periodic
/// DeleteOldHistory retention sweeps, mirrored into a MemHistoryStore
/// reference.  Verification compares ReadAll() of the recovered store
/// against the reference over acknowledged operations.
Result<TortureResult> RunSqlCrashTorture(const TortureOptions& options,
                                         const std::string& dir,
                                         std::string_view point,
                                         uint64_t nth);

// ---------------------------------------------------------------------------
// Bit-flip torture: silent-corruption detection and self-healing repair
// ---------------------------------------------------------------------------

/// Options of the offline sweep (RunBitFlipSweep).
struct BitFlipSweepOptions {
  uint64_t seed = 42;

  /// Entries in the freshly built tree (enough for several leaf pages).
  uint64_t num_entries = 400;

  /// Sampled payload bit positions flipped per page, on top of every bit
  /// of the 16-byte page header.
  uint64_t payload_bits_per_page = 16;
};

/// Outcome of one offline sweep.  100% detection means detected == flips
/// with mislocated == 0 and false_positives == 0.
struct BitFlipSweepResult {
  uint64_t pages = 0;
  uint64_t flips = 0;
  /// Flips where the scrubber flagged exactly the corrupted page AND a
  /// fresh buffer-pool fetch of that page returned Corruption.
  uint64_t detected = 0;
  /// Flips detected but blamed on the wrong page or on extra pages.
  uint64_t mislocated = 0;
  /// Scrub errors reported against the restored (uncorrupted) image.
  uint64_t false_positives = 0;
};

/// Offline sweep: builds a checksummed tree, flushes it, then — one flip
/// at a time, directly on the disk image — flips every bit of every page
/// header plus seeded payload bits per page.  After each flip the
/// scrubber must flag exactly the corrupted page and a fresh fetch must
/// fail; after restoring the bit, a re-scrub must be clean.
Result<BitFlipSweepResult> RunBitFlipSweep(const BitFlipSweepOptions& options);

/// Options of the online campaign (RunBitFlipCampaign).
struct BitFlipCampaignOptions {
  uint64_t seed = 42;

  /// Must build a tree larger than the pool (a ~1500-op workload holds
  /// ~1000 live entries across ~8 pages) so evictions and cache misses
  /// produce the disk reads and writes the flips are scripted against.
  uint64_t num_ops = 1500;
  double delete_fraction = 0.10;
  double update_fraction = 0.10;

  /// Small WAL threshold so checkpoints (and thus snapshots to repair
  /// from) happen during the workload.
  uint64_t checkpoint_wal_bytes = 1 << 14;

  /// Small pool so the workload generates real disk reads and writes for
  /// the scripted flips to land on.  Must be smaller than the tree's page
  /// count, else the counting pass observes no disk traffic at all.
  uint64_t buffer_pool_pages = 4;

  /// Scripted (nth-operation, bit-position) flip cases per disk op kind
  /// (read and write); half aim at page-header bits, half at the payload.
  uint64_t cases_per_op = 6;
};

/// Outcome of one online campaign.
struct BitFlipCampaignResult {
  uint64_t runs = 0;
  uint64_t flips_fired = 0;
  uint64_t acked_ops = 0;
  uint64_t corruption_detected = 0;
  uint64_t corruption_repaired = 0;
  uint64_t corruption_quarantined = 0;
};

/// Online campaign: replays the recorded DurableTree workload once per
/// scripted bit flip (a counting pass first learns how many disk reads
/// and writes the workload issues).  Every run must end with zero
/// acked-record loss: all operations acknowledge, the final contents
/// equal the reference model (through whatever self-healing repairs the
/// flip forced), the B+tree invariants hold, and a closing Scrub() leaves
/// the store clean — catching flips still latent on the page store.
Result<BitFlipCampaignResult> RunBitFlipCampaign(
    const BitFlipCampaignOptions& options, const std::string& dir);

}  // namespace prorp::faults

#endif  // PRORP_FAULTS_TORTURE_H_
