#ifndef PRORP_FAULTS_CRASH_POINTS_H_
#define PRORP_FAULTS_CRASH_POINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace prorp::faults {

/// Named crash points instrumented in the storage engine.  Each simulates
/// dying at a specific vulnerable instant; the component leaves whatever
/// partial on-medium state a real crash would and returns Status::Aborted,
/// which the torture harness treats as process death (no further writes,
/// reopen from the directory).
inline constexpr std::string_view kWalAppendPartial = "wal_append_partial";
inline constexpr std::string_view kWalPreSync = "wal_pre_sync";
/// Group commit: the batched write reached the file, the group fsync did
/// not happen.  Every record in the round is unacknowledged but its bytes
/// may survive to recovery.
inline constexpr std::string_view kWalGroupPreSync = "wal_group_pre_sync";
inline constexpr std::string_view kBtreeMidSplit = "btree_mid_split";
inline constexpr std::string_view kSnapshotMidCopy = "snapshot_mid_copy";
inline constexpr std::string_view kSnapshotPreRenameSync =
    "snapshot_pre_rename_sync";

/// All compiled-in crash points (for harness enumeration and docs).
std::vector<std::string_view> AllCrashPoints();

/// Process-global registry of crash points.  Instrumented code adds a
/// one-line hook (PRORP_CRASH_POINT) per point; the torture harness arms
/// one point at a time and replays a workload until it fires.
///
/// Disarmed cost is one relaxed atomic load, so hooks are safe on hot
/// paths (B+tree splits, WAL appends).  Arming and hit accounting are
/// mutex-protected; production code never arms, tests arm from a single
/// thread.
class CrashPointRegistry {
 public:
  static CrashPointRegistry& Global();

  /// Arms `point` to fire on its `nth` (1-based) future hit.  `payload`
  /// parameterizes the crash effect at the site (e.g. how many bytes of a
  /// torn WAL frame reach the file).  Re-arming replaces the previous arm
  /// and resets hit counters.
  void Arm(std::string_view point, uint64_t nth, uint64_t payload = 0);

  /// Disarms everything and clears all counters and the fired flag.
  void Reset();

  /// Starts/stops pure hit counting (no firing).  The torture harness
  /// uses a counting pass to discover which points a workload reaches and
  /// how often, before choosing where to crash.
  void SetCounting(bool on);

  /// Called by instrumented code via PRORP_CRASH_POINT.  Returns
  /// Status::Aborted when this hit is the armed one, OK otherwise.
  Status Hit(std::string_view point);

  /// Hits recorded at `point` since the last Reset()/Arm().
  uint64_t hits(std::string_view point) const;

  /// Whether the armed point has fired.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Payload of the armed point (valid after Arm).
  uint64_t payload() const { return payload_; }

  /// Points hit at least once since the last Reset()/Arm().
  std::vector<std::string> observed_points() const;

 private:
  CrashPointRegistry() = default;

  std::atomic<bool> active_{false};  // armed or counting
  std::atomic<bool> fired_{false};
  mutable std::mutex mu_;
  bool counting_ = false;
  std::string armed_point_;
  uint64_t armed_nth_ = 0;
  uint64_t payload_ = 0;
  std::map<std::string, uint64_t, std::less<>> hit_counts_;
};

/// Convenience hook against the global registry.
inline Status HitCrashPoint(std::string_view point) {
  return CrashPointRegistry::Global().Hit(point);
}

/// One-line crash-point hook for instrumented code.
#define PRORP_CRASH_POINT(point) \
  PRORP_RETURN_IF_ERROR(::prorp::faults::HitCrashPoint(point))

}  // namespace prorp::faults

#endif  // PRORP_FAULTS_CRASH_POINTS_H_
