#ifndef PRORP_FAULTS_CRASH_POINTS_H_
#define PRORP_FAULTS_CRASH_POINTS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace prorp::faults {

/// Named crash points instrumented in the storage engine.  Each simulates
/// dying at a specific vulnerable instant; the component leaves whatever
/// partial on-medium state a real crash would and returns Status::Aborted,
/// which the torture harness treats as process death (no further writes,
/// reopen from the directory).
inline constexpr std::string_view kWalAppendPartial = "wal_append_partial";
inline constexpr std::string_view kWalPreSync = "wal_pre_sync";
/// Group commit: the batched write reached the file, the group fsync did
/// not happen.  Every record in the round is unacknowledged but its bytes
/// may survive to recovery.
inline constexpr std::string_view kWalGroupPreSync = "wal_group_pre_sync";
inline constexpr std::string_view kBtreeMidSplit = "btree_mid_split";
inline constexpr std::string_view kSnapshotMidCopy = "snapshot_mid_copy";
inline constexpr std::string_view kSnapshotPreRenameSync =
    "snapshot_pre_rename_sync";
/// Control-plane journal: the record's frame reached the journal file but
/// the process dies before the fsync.  The armed payload chooses how many
/// bytes of the frame survive (0 = all of them — a record that is durable
/// but was never acknowledged; n > 0 = a torn tail of n % frame_size
/// bytes).
inline constexpr std::string_view kCpJournalPreSync = "cp_journal_pre_sync";
/// Control-plane journal: the record is durable in the journal but the
/// process dies before the in-memory transition it describes is applied.
/// Recovery must replay the record so the acknowledged transition is not
/// lost.
inline constexpr std::string_view kCpPostJournalPreApply =
    "cp_post_journal_pre_apply";
/// Control-plane checkpoint: the process dies halfway through writing the
/// checkpoint temp file.  The previous checkpoint (or none) plus the
/// un-truncated journal must still recover the full state.
inline constexpr std::string_view kCpCheckpointMidWrite =
    "cp_checkpoint_mid_write";
/// Control plane: the resume callback was dispatched to the node (its
/// side effect may have happened) but the process dies before the outcome
/// is journaled.  Recovery must reconcile the dispatched-but-unacked
/// workflow against the node's state instead of blindly re-resuming.
inline constexpr std::string_view kCpDispatchPreAck = "cp_dispatch_pre_ack";

/// All compiled-in crash points (for harness enumeration and docs).
std::vector<std::string_view> AllCrashPoints();

/// The storage-engine subset (WAL, B-tree, snapshot) — what the storage
/// crash-torture harness exercises.
std::vector<std::string_view> StorageCrashPoints();

/// The control-plane subset (journal, checkpoint, dispatch) — what the
/// recovery crash-torture matrix exercises.
std::vector<std::string_view> ControlPlaneCrashPoints();

/// Process-global registry of crash points.  Instrumented code adds a
/// one-line hook (PRORP_CRASH_POINT) per point; the torture harness arms
/// one point at a time and replays a workload until it fires.
///
/// Disarmed cost is one relaxed atomic load, so hooks are safe on hot
/// paths (B+tree splits, WAL appends).  Arming and hit accounting are
/// mutex-protected; production code never arms, tests arm from a single
/// thread.
class CrashPointRegistry {
 public:
  static CrashPointRegistry& Global();

  /// Arms `point` to fire on its `nth` (1-based) future hit.  `payload`
  /// parameterizes the crash effect at the site (e.g. how many bytes of a
  /// torn WAL frame reach the file).  Re-arming replaces the previous arm
  /// and resets hit counters.
  void Arm(std::string_view point, uint64_t nth, uint64_t payload = 0);

  /// Disarms everything and clears all counters and the fired flag.
  void Reset();

  /// Starts/stops pure hit counting (no firing).  The torture harness
  /// uses a counting pass to discover which points a workload reaches and
  /// how often, before choosing where to crash.
  void SetCounting(bool on);

  /// Called by instrumented code via PRORP_CRASH_POINT.  Returns
  /// Status::Aborted when this hit is the armed one, OK otherwise.
  Status Hit(std::string_view point);

  /// Hits recorded at `point` since the last Reset()/Arm().
  uint64_t hits(std::string_view point) const;

  /// Whether the armed point has fired.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

  /// Payload of the armed point (valid after Arm).
  uint64_t payload() const { return payload_; }

  /// Points hit at least once since the last Reset()/Arm().
  std::vector<std::string> observed_points() const;

 private:
  CrashPointRegistry() = default;

  std::atomic<bool> active_{false};  // armed or counting
  std::atomic<bool> fired_{false};
  mutable std::mutex mu_;
  bool counting_ = false;
  std::string armed_point_;
  uint64_t armed_nth_ = 0;
  uint64_t payload_ = 0;
  std::map<std::string, uint64_t, std::less<>> hit_counts_;
};

/// Convenience hook against the global registry.
inline Status HitCrashPoint(std::string_view point) {
  return CrashPointRegistry::Global().Hit(point);
}

/// One-line crash-point hook for instrumented code.
#define PRORP_CRASH_POINT(point) \
  PRORP_RETURN_IF_ERROR(::prorp::faults::HitCrashPoint(point))

}  // namespace prorp::faults

#endif  // PRORP_FAULTS_CRASH_POINTS_H_
