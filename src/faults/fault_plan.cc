#include "faults/fault_plan.h"

namespace prorp::faults {

std::string_view FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kDiskRead:
      return "disk_read";
    case FaultOp::kDiskWrite:
      return "disk_write";
    case FaultOp::kDiskAllocate:
      return "disk_allocate";
    case FaultOp::kDiskSync:
      return "disk_sync";
    case FaultOp::kWalAppend:
      return "wal_append";
    case FaultOp::kWalSync:
      return "wal_sync";
    case FaultOp::kMsgRequest:
      return "msg_request";
    case FaultOp::kMsgAck:
      return "msg_ack";
    case FaultOp::kMsgLease:
      return "msg_lease";
  }
  return "unknown";
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIoError:
      return "io_error";
    case FaultKind::kTornWrite:
      return "torn_write";
    case FaultKind::kBitFlip:
      return "bit_flip";
    case FaultKind::kDiskFull:
      return "disk_full";
    case FaultKind::kMsgDrop:
      return "msg_drop";
    case FaultKind::kMsgDuplicate:
      return "msg_duplicate";
    case FaultKind::kMsgDelay:
      return "msg_delay";
  }
  return "unknown";
}

void FaultPlan::FailNth(FaultOp op, uint64_t nth, FaultKind kind) {
  scripted_[static_cast<size_t>(op)].push_back({nth, kind, std::nullopt});
}

void FaultPlan::FailNthWithArg(FaultOp op, uint64_t nth, FaultKind kind,
                               uint64_t arg) {
  scripted_[static_cast<size_t>(op)].push_back({nth, kind, arg});
}

void FaultPlan::FailWithProbability(FaultOp op, double p, FaultKind kind) {
  probabilistic_[static_cast<size_t>(op)].push_back({p, kind});
}

std::optional<FaultDecision> FaultPlan::Next(FaultOp op) {
  size_t i = static_cast<size_t>(op);
  uint64_t n = ++counters_[i];
  for (const ScriptedTrigger& t : scripted_[i]) {
    if (t.nth == n) {
      ++injected_;
      return FaultDecision{t.kind, t.arg.has_value() ? *t.arg
                                                     : rng_.NextU64()};
    }
  }
  // Always consume one draw per registered trigger so the stream position
  // depends only on the op sequence and the plan program, not on which
  // draws happened to fire.  The first trigger (in registration order)
  // whose draw fires wins the occurrence.
  std::optional<size_t> fired;
  const auto& probs = probabilistic_[i];
  for (size_t t = 0; t < probs.size(); ++t) {
    uint64_t draw = rng_.NextU64();
    double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < probs[t].p && !fired.has_value()) fired = t;
  }
  if (fired.has_value()) {
    ++injected_;
    return FaultDecision{probs[*fired].kind, rng_.NextU64()};
  }
  return std::nullopt;
}

}  // namespace prorp::faults
