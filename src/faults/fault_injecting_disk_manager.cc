#include "faults/fault_injecting_disk_manager.h"

#include <cstring>

namespace prorp::faults {

using storage::kPageSize;
using storage::PageId;

Result<PageId> FaultInjectingDiskManager::Allocate() {
  if (auto d = plan_->Next(FaultOp::kDiskAllocate)) {
    if (d->kind == FaultKind::kDiskFull) {
      return Status::IoError("injected allocate fault: disk full (ENOSPC)");
    }
    return Status::IoError("injected allocate fault");
  }
  return inner_->Allocate();
}

Status FaultInjectingDiskManager::Release(PageId id) {
  return inner_->Release(id);
}

Status FaultInjectingDiskManager::Read(PageId id, uint8_t* buf) {
  auto d = plan_->Next(FaultOp::kDiskRead);
  if (d && d->kind == FaultKind::kIoError) {
    return Status::IoError("injected read fault");
  }
  PRORP_RETURN_IF_ERROR(inner_->Read(id, buf));
  if (d && d->kind == FaultKind::kBitFlip) {
    uint64_t bit = d->arg % (kPageSize * 8);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return Status::OK();
}

Status FaultInjectingDiskManager::Write(PageId id, const uint8_t* buf) {
  auto d = plan_->Next(FaultOp::kDiskWrite);
  if (!d) return inner_->Write(id, buf);
  switch (d->kind) {
    case FaultKind::kIoError:
      return Status::IoError("injected write fault");
    case FaultKind::kTornWrite: {
      // Persist only a prefix; the tail keeps whatever the page held
      // before (a crashed sector-aligned write, approximately).
      uint8_t torn[kPageSize];
      Status read = inner_->Read(id, torn);
      if (!read.ok()) std::memset(torn, 0, kPageSize);
      size_t cut = d->arg % kPageSize;
      std::memcpy(torn, buf, cut);
      PRORP_RETURN_IF_ERROR(inner_->Write(id, torn));
      return Status::IoError("injected torn page write");
    }
    case FaultKind::kBitFlip: {
      uint8_t flipped[kPageSize];
      std::memcpy(flipped, buf, kPageSize);
      uint64_t bit = d->arg % (kPageSize * 8);
      flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      return inner_->Write(id, flipped);
    }
    case FaultKind::kDiskFull:
      // Page writes are all-or-nothing at this layer: out of space means
      // the page never reaches the medium (the old contents stay intact).
      return Status::IoError("injected write fault: disk full (ENOSPC)");
    case FaultKind::kMsgDrop:
    case FaultKind::kMsgDuplicate:
    case FaultKind::kMsgDelay:
      break;  // message-only kinds; meaningless at a disk site
  }
  return inner_->Write(id, buf);
}

Status FaultInjectingDiskManager::Sync() {
  if (auto d = plan_->Next(FaultOp::kDiskSync)) {
    return Status::IoError("injected sync fault");
  }
  return inner_->Sync();
}

}  // namespace prorp::faults
