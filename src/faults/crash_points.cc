#include "faults/crash_points.h"

namespace prorp::faults {

std::vector<std::string_view> StorageCrashPoints() {
  return {kWalAppendPartial, kWalPreSync,      kWalGroupPreSync,
          kBtreeMidSplit,    kSnapshotMidCopy, kSnapshotPreRenameSync};
}

std::vector<std::string_view> ControlPlaneCrashPoints() {
  return {kCpJournalPreSync, kCpPostJournalPreApply, kCpCheckpointMidWrite,
          kCpDispatchPreAck};
}

std::vector<std::string_view> AllCrashPoints() {
  std::vector<std::string_view> points = StorageCrashPoints();
  for (std::string_view p : ControlPlaneCrashPoints()) points.push_back(p);
  return points;
}

CrashPointRegistry& CrashPointRegistry::Global() {
  static CrashPointRegistry* registry = new CrashPointRegistry();
  return *registry;
}

void CrashPointRegistry::Arm(std::string_view point, uint64_t nth,
                             uint64_t payload) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_ = std::string(point);
  armed_nth_ = nth == 0 ? 1 : nth;
  payload_ = payload;
  hit_counts_.clear();
  fired_.store(false, std::memory_order_release);
  active_.store(true, std::memory_order_release);
}

void CrashPointRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_point_.clear();
  armed_nth_ = 0;
  payload_ = 0;
  counting_ = false;
  hit_counts_.clear();
  fired_.store(false, std::memory_order_release);
  active_.store(false, std::memory_order_release);
}

void CrashPointRegistry::SetCounting(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = on;
  if (on) hit_counts_.clear();
  active_.store(on || !armed_point_.empty(), std::memory_order_release);
}

Status CrashPointRegistry::Hit(std::string_view point) {
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = ++hit_counts_[std::string(point)];
  if (!armed_point_.empty() && point == armed_point_ && n == armed_nth_ &&
      !fired_.load(std::memory_order_relaxed)) {
    fired_.store(true, std::memory_order_release);
    return Status::Aborted("injected crash at " + armed_point_);
  }
  return Status::OK();
}

uint64_t CrashPointRegistry::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::vector<std::string> CrashPointRegistry::observed_points() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(hit_counts_.size());
  for (const auto& [name, count] : hit_counts_) {
    if (count > 0) out.push_back(name);
  }
  return out;
}

}  // namespace prorp::faults
