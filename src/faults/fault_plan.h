#ifndef PRORP_FAULTS_FAULT_PLAN_H_
#define PRORP_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"

namespace prorp::faults {

/// Instrumented operation sites a FaultPlan can fire at.  Each site calls
/// FaultPlan::Next(op) exactly once per operation, so scripted "fail the
/// Nth op" triggers are exact.
enum class FaultOp : uint8_t {
  kDiskRead = 0,
  kDiskWrite,
  kDiskAllocate,
  kDiskSync,
  kWalAppend,
  kWalSync,
  // Message-level sites (the control-plane <-> node transport,
  // DESIGN.md section 11).  One Next() per message send, keyed by the
  // message's direction/class so a plan can torture requests and acks
  // independently.
  kMsgRequest,  ///< plane -> node requests (resume/pause)
  kMsgAck,      ///< node -> plane replies (ack/nack)
  kMsgLease,    ///< lease renewals/grants, either direction
};

inline constexpr int kNumFaultOps = 9;

std::string_view FaultOpName(FaultOp op);

/// What kind of fault to inject when a trigger fires.
enum class FaultKind : uint8_t {
  /// The operation fails with Status::IoError; no bytes reach the medium.
  kIoError = 0,
  /// A write persists only a prefix of the intended bytes (torn write).
  kTornWrite,
  /// A single bit of the payload is flipped (silent medium corruption).
  kBitFlip,
  /// The medium is out of space (ENOSPC): a write persists only a prefix
  /// before failing, and the operation must fail-stop cleanly — roll the
  /// file back, acknowledge nothing.  Unlike kTornWrite the caller gets a
  /// distinguishable disk-full error, and unlike kIoError some bytes may
  /// have reached the medium before the failure.
  kDiskFull,
  // Message-level kinds, meaningful only at the kMsg* sites (the
  // FaultInjectingTransport decorator).  Disk/WAL sites ignore them.
  /// The message is silently lost; the sender sees nothing.
  kMsgDrop,
  /// The message is delivered twice (at-least-once redelivery).
  kMsgDuplicate,
  /// Delivery is deferred on the simulated clock by an interval derived
  /// from the decision arg; independently delayed messages overtake each
  /// other, so reordering is emergent rather than a separate kind.
  kMsgDelay,
};

std::string_view FaultKindName(FaultKind kind);

/// A fired trigger: the kind plus a deterministic 64-bit argument the
/// injection site interprets (torn-write cut offset, bit index, ...).
struct FaultDecision {
  FaultKind kind = FaultKind::kIoError;
  uint64_t arg = 0;
};

/// Deterministic fault schedule driving every injection site (the
/// FaultInjectingDiskManager decorator and the WAL's append/sync hooks).
///
/// Two trigger forms compose:
///  * scripted — fire on the Nth occurrence (1-based) of an operation,
///    for pinpoint regression tests ("fail the 3rd WAL append");
///  * seeded-probabilistic — fire with probability p per occurrence, with
///    all randomness drawn from the plan's seed so a (seed, plan) pair
///    replays bit-identically.
///
/// Not internally synchronized: like the storage engine it instruments,
/// a plan belongs to one single-writer stack.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) : rng_(seed) {}

  /// Fires `kind` on the `nth` (1-based) future occurrence of `op`.
  /// Multiple scripted triggers on the same op are allowed.
  void FailNth(FaultOp op, uint64_t nth, FaultKind kind);

  /// Like FailNth, but with a fixed decision argument instead of a seeded
  /// draw.  The bit-flip torture sweep uses this to hit an exact bit
  /// position (page-header bytes, sampled payload bits).
  void FailNthWithArg(FaultOp op, uint64_t nth, FaultKind kind, uint64_t arg);

  /// Fires `kind` with probability `p` on every occurrence of `op`.
  /// Probabilistic triggers stack: each occurrence evaluates every
  /// registered trigger (one seeded draw apiece, so the stream position is
  /// a function of the op sequence and the plan program alone) and the
  /// first one to fire, in registration order, decides the fault — a
  /// mixed-fault wire is just several FailWithProbability calls.
  void FailWithProbability(FaultOp op, double p, FaultKind kind);

  /// Called by an injection site once per operation.  Advances the op
  /// counter and returns the decision when a trigger fires.
  std::optional<FaultDecision> Next(FaultOp op);

  /// Operations observed so far at `op`.
  uint64_t ops_seen(FaultOp op) const {
    return counters_[static_cast<size_t>(op)];
  }

  /// Total faults fired so far (the telemetry "injected faults" counter).
  uint64_t injected() const { return injected_; }

 private:
  struct ScriptedTrigger {
    uint64_t nth = 0;
    FaultKind kind = FaultKind::kIoError;
    std::optional<uint64_t> arg;  // fixed decision arg; seeded draw if unset
  };
  struct ProbabilisticTrigger {
    double p = 0;
    FaultKind kind = FaultKind::kIoError;
  };

  Rng rng_;
  uint64_t counters_[kNumFaultOps] = {};
  std::vector<ScriptedTrigger> scripted_[kNumFaultOps];
  std::vector<ProbabilisticTrigger> probabilistic_[kNumFaultOps];
  uint64_t injected_ = 0;
};

}  // namespace prorp::faults

#endif  // PRORP_FAULTS_FAULT_PLAN_H_
